// The round-fed, bounded-memory receipt verifier.
//
// PathVerifier materializes every HOP's receipts in a std::map and runs
// the Section 4 analyses over full sequences at query time — fine for one
// measurement run, O(history) for a domain verifying a path for months.
// IncrementalPathVerifier is the production counterpart: constructed with
// the PathLayout (so it knows which adjacent HOP pairs it must analyze),
// it ingests receipts one reporting round at a time — fed straight from
// WireImporter's recovered drains via core::DrainRoundSink — and retires
// raw receipts as soon as their pairwise analysis is final:
//
//   * cross-HOP delay matching holds only the ingress samples still
//     waiting for their egress twin (evicted after `retain_rounds`);
//   * link sample-consistency pairs marker-delimited sampling rounds as
//     they complete, FIFO per link, and retires a matched pair
//     immediately (an upstream round unmatched after `retain_rounds` is
//     declared kMarkerMissing, exactly what the batch check concludes of
//     a marker that never appears downstream);
//   * aggregate alignment keeps an AggregateTail per pair and consumes
//     the stable aligned prefix after every round
//     (core::consume_aligned_prefix), so raw aggregate receipts live only
//     until a margin of matched boundaries passes them.
//
// analyze() then assembles the same PathAnalysis the materialized verifier
// computes over the full history — byte-identical findings whenever every
// receipt's counterpart arrives within the retention window (honest
// reporting; the churn-soak suite pins equality over 50+ rounds), while
// resident state stays O(retained window + analysis product), not
// O(history).  One documented divergence on TAMPERED streams: sampling
// rounds pair match-ONCE here (a matched downstream round is retired for
// memory), while the batch checker would let duplicated upstream marker
// ids re-match one downstream round — the duplicate surfaces as
// kMarkerMissing instead of a repeated check, still a violation either
// way.
#ifndef VPM_CORE_INCREMENTAL_VERIFIER_HPP
#define VPM_CORE_INCREMENTAL_VERIFIER_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/alignment.hpp"
#include "core/consistency.hpp"
#include "core/receipt.hpp"
#include "core/verifier.hpp"
#include "net/path_id.hpp"

namespace vpm::core {

class IncrementalPathVerifier {
 public:
  struct Config {
    /// How the path's HOPs map to domains — fixed at construction, since
    /// pairwise running state exists per adjacent HOP pair.
    PathLayout layout;
    /// Rounds an unmatched cross-HOP sample or sampling round waits for
    /// its counterpart before being finalized (expired ingress entries /
    /// kMarkerMissing verdicts).  Honest counterparts arrive within one
    /// round (a packet in flight at a drain shows up in the next), so a
    /// small window preserves batch equality.  Must be >= 1.
    std::uint64_t retain_rounds = 4;
    /// Matched aggregate boundaries kept unconsumed behind each alignment
    /// tail (see core::consume_aligned_prefix).
    std::size_t margin_boundaries = 2;
  };

  /// Throws std::invalid_argument on a malformed layout (size mismatch)
  /// or a zero retention window.
  explicit IncrementalPathVerifier(Config cfg);

  /// Ingest one reporting round of receipts from `hop` (must appear in
  /// the layout).  Feed rounds in reporting order per hop and, within one
  /// reporting round, upstream HOPs before downstream ones — the order
  /// receipts become available in a deployment, and the order that lets
  /// cross-HOP matching retire state immediately.
  void add_round(net::HopId hop, PathDrain round);

  /// Record a dissemination gap: reporting round(s) from one HOP that
  /// were lost or corrupted in transit and will never be fed.  The
  /// verifier keeps running on whatever does arrive — cross-HOP state
  /// whose counterpart fell in the gap ages out through the normal
  /// retention path — and analyze() surfaces the gap verbatim so no
  /// absence is silent (ISSUE 6 graceful degradation).
  void report_gap(RoundGap gap);

  /// Gaps reported so far, in report order.
  [[nodiscard]] const std::vector<RoundGap>& gaps() const noexcept {
    return gaps_;
  }

  /// The Fig.-1-style analysis over everything ingested so far —
  /// non-destructive, callable every round.  HOPs with no rounds yet
  /// yield empty findings (partial deployment, exactly like the
  /// materialized analyze()).  Reported gaps are copied into
  /// PathAnalysis::gaps.
  [[nodiscard]] PathAnalysis analyze() const;

  [[nodiscard]] std::uint64_t rounds_ingested(net::HopId hop) const;

  /// Resident-state accounting for the bounded-memory claim.  The first
  /// three are the O(retained window) working set; the retained_* figures
  /// are the analysis product itself (delays and joined aggregates appear
  /// verbatim in the findings).
  struct ResidentStats {
    std::size_t pending_ingress_samples = 0;
    /// Egress samples buffered for an upstream round still in transit —
    /// nonzero only while cross-HOP feeds are out of order.
    std::size_t pending_egress_samples = 0;
    std::size_t pending_sample_rounds = 0;
    std::size_t tail_aggregate_receipts = 0;
    std::size_t retained_delays = 0;
    std::size_t retained_aligned_groups = 0;
    /// Entries dropped unmatched past the retention window (0 under
    /// honest in-window reporting).
    std::uint64_t expired_unmatched = 0;
  };
  [[nodiscard]] ResidentStats resident_stats() const;

 private:
  /// Receipt metadata captured from a HOP's first round (stable across an
  /// honest HOP's rounds; the combined batch receipt reports the first).
  struct HopInfo {
    bool seen = false;
    net::Duration max_diff{0};
    std::uint32_t sample_threshold = 0;
  };

  /// Cross-HOP delay matching for a same-domain pair.
  struct DelayState {
    struct Entry {
      net::Timestamp time;
      std::uint64_t round;   ///< pair clock when inserted
      bool matched = false;  ///< some egress sample paired with it
    };
    /// An egress sample whose ingress twin has not been fed yet.  Each
    /// HOP's stream arrives through its own fetch loop, so a downstream
    /// round can land polls before its upstream counterpart (backoff, gap
    /// patience); buffering this side symmetrically makes the match
    /// independent of cross-HOP feed order within the retention window.
    struct PendingEgress {
      net::PacketDigest digest = 0;
      net::Timestamp time;
      std::uint64_t order = 0;  ///< position in the egress sample stream
      std::uint64_t round = 0;  ///< pair clock when buffered
    };
    std::unordered_map<net::PacketDigest, Entry> ingress_times;
    std::vector<PendingEgress> pending_egress;  ///< egress stream order
    /// Matched (egress stream position, delay ms).  analyze() sorts by
    /// position, so the reported delays read in egress observation order
    /// no matter which side of the pair was fed first.
    std::vector<std::pair<std::uint64_t, double>> delays;
    std::uint64_t egress_seen = 0;  ///< egress samples processed
    std::uint64_t expired = 0;
  };

  /// Aggregate alignment for a same-domain pair (loss report).
  struct LossState {
    AggregateTail tail;
    std::vector<AlignedAggregate> groups;  ///< consumed (finalized) prefix
    std::size_t consumed_migrations = 0;
  };

  /// Sampling-round pairing for an inter-domain link.
  struct LinkSamplesState {
    struct Stamped {
      SampleRound round;
      std::uint64_t seen;  ///< pair clock when completed
    };
    SampleRoundSplitter up_splitter;
    SampleRoundSplitter down_splitter;
    std::deque<Stamped> pending_up;  ///< FIFO, preserves batch check order
    std::unordered_map<net::PacketDigest, Stamped> down_by_marker;
    /// Finalized rounds' matches/delays/violations (everything but the
    /// analyze-time Eq.-1 MaxDiff check and still-pending rounds).
    LinkSampleCheck accumulated;
    std::uint64_t expired = 0;
  };

  /// Aggregate count-consistency for an inter-domain link.
  struct LinkAggregatesState {
    AggregateTail tail;
    std::size_t checked = 0;  ///< consumed groups
    std::vector<Inconsistency> violations;
  };

  struct Pair {
    bool is_domain = false;  ///< same-domain segment vs inter-domain link
    std::size_t up_pos = 0;  ///< positions into layout.hops
    std::size_t down_pos = 0;
    DelayState delay;
    LossState loss;
    LinkSamplesState link_samples;
    LinkAggregatesState link_aggregates;
  };

  [[nodiscard]] std::uint64_t pair_clock(const Pair& p) const;
  void feed_domain(Pair& p, bool is_up, const PathDrain& round);
  void feed_link(Pair& p, bool is_up, const PathDrain& round);
  void settle_pair(Pair& p);

  Config cfg_;
  std::vector<Pair> pairs_;
  std::vector<RoundGap> gaps_;
  std::unordered_map<net::HopId, std::uint64_t> rounds_;
  std::unordered_map<net::HopId, HopInfo> hop_info_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_INCREMENTAL_VERIFIER_HPP
