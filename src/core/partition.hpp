// The partition lattice of Section 6.1: partitions of a packet sequence
// into consecutive aggregates, the coarser/finer relation, and Join.
//
// A partition of n consecutively observed packets is represented by its
// cutting points — the set of indices that start an aggregate (index 0 is
// always a cutting point, mirroring the paper's definition where the first
// packet of each aggregate is a cutting point).  On this representation
// the paper's notions become exact set operations:
//   * A1 coarser-or-equal A2  <=>  cuts(A1) is a subset of cuts(A2);
//   * Join(A1..AN) = the partition cut exactly at the common cutting
//     points (the finest partition coarser than every Ai).
// This module is the specification the receipt-level join in the verifier
// is tested against (same-sequence case).
#ifndef VPM_CORE_PARTITION_HPP
#define VPM_CORE_PARTITION_HPP

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace vpm::core {

class Partition {
 public:
  /// `cuts` are the aggregate-start indices; must be sorted, unique,
  /// contain 0, and lie below `n`.  Throws std::invalid_argument otherwise
  /// (or if n == 0).
  Partition(std::size_t n, std::vector<std::size_t> cuts);

  /// The single-aggregate partition {{p1..pn}}.
  [[nodiscard]] static Partition trivial(std::size_t n);
  /// The all-singletons partition {{p1},...,{pn}}.
  [[nodiscard]] static Partition finest(std::size_t n);

  [[nodiscard]] std::size_t sequence_size() const noexcept { return n_; }
  [[nodiscard]] const std::vector<std::size_t>& cuts() const noexcept {
    return cuts_;
  }
  [[nodiscard]] std::size_t aggregate_count() const noexcept {
    return cuts_.size();
  }
  /// Aggregates as [begin, end) index ranges.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> aggregates()
      const;

  /// True iff this partition is coarser than or equal to `other`
  /// (paper notation: *this >= other).  Throws std::invalid_argument if
  /// the partitions cover different sequence sizes.
  [[nodiscard]] bool coarser_or_equal(const Partition& other) const;

  /// Join of several partitions of the same sequence: the finest partition
  /// coarser than all inputs.  Throws std::invalid_argument on empty input
  /// or mismatched sizes.
  [[nodiscard]] static Partition join(std::span<const Partition> parts);

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::size_t n_;
  std::vector<std::size_t> cuts_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_PARTITION_HPP
