// The receipt collector / verifier: computes each domain's loss and delay
// from receipts and cross-checks neighbours' receipts for consistency
// (Sections 2.2 and 4).
//
// Everything here consumes *receipts only* — never simulator ground truth
// — so the code path is exactly what a real deploying domain would run.
#ifndef VPM_CORE_VERIFIER_HPP
#define VPM_CORE_VERIFIER_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/consistency.hpp"
#include "core/receipt.hpp"
#include "net/path_id.hpp"
#include "stats/delay_accuracy.hpp"
#include "stats/quantile.hpp"

namespace vpm::core {

/// Delay through one domain, estimated from commonly sampled packets at
/// its ingress/egress HOPs (Section 4, "Receipt-based Statistics").
struct DomainDelayReport {
  std::size_t common_samples = 0;
  /// Per-packet delays (ms) of the commonly sampled packets.
  std::vector<double> sample_delays_ms;
  /// Quantile estimates with confidence intervals ([20]-style).
  std::vector<stats::QuantileEstimate> quantiles;
  [[nodiscard]] bool usable() const noexcept { return common_samples > 0; }
  friend bool operator==(const DomainDelayReport&,
                         const DomainDelayReport&) = default;
};

/// Loss through one domain, computed from joined aggregates.
struct DomainLossReport {
  std::uint64_t offered = 0;    ///< packets counted at ingress
  std::uint64_t delivered = 0;  ///< packets counted at egress
  std::size_t joined_aggregates = 0;
  std::size_t patchup_migrations = 0;
  /// Mean/max time (s) spanned by one joined aggregate: the granularity at
  /// which loss is computable (Fig. 3's y-axis).
  double mean_granularity_s = 0.0;
  double max_granularity_s = 0.0;
  std::vector<AlignedAggregate> details;

  [[nodiscard]] double loss_rate() const noexcept {
    return offered == 0
               ? 0.0
               : 1.0 - static_cast<double>(delivered) /
                           static_cast<double>(offered);
  }
  friend bool operator==(const DomainLossReport&,
                         const DomainLossReport&) = default;
};

/// Consistency verdict for one inter-domain link.
struct LinkReport {
  LinkSampleCheck samples;
  LinkAggregateCheck aggregates;
  [[nodiscard]] bool consistent() const noexcept {
    return samples.consistent() && aggregates.consistent();
  }
  [[nodiscard]] std::size_t violation_count() const noexcept {
    return samples.violations.size() + aggregates.violations.size();
  }
  friend bool operator==(const LinkReport&, const LinkReport&) = default;
};

/// Receipts one HOP produced for one path over the measurement period.
struct HopReceipts {
  net::HopId hop = net::kNoHop;
  SampleReceipt samples;
  std::vector<AggregateReceipt> aggregates;
};

/// How the path's HOPs map to domains, for attribution (the verifier
/// learns this from BGP/peering data; here it is supplied).
struct PathLayout {
  /// HOPs in path order (Fig. 1: 1..8).
  std::vector<net::HopId> hops;
  /// domain_of[i] names the domain owning hops[i].
  std::vector<std::string> domain_of;

  friend bool operator==(const PathLayout&, const PathLayout&) = default;
};

struct DomainFinding {
  std::string domain;
  net::HopId ingress = net::kNoHop;
  net::HopId egress = net::kNoHop;
  DomainDelayReport delay;
  DomainLossReport loss;

  friend bool operator==(const DomainFinding&,
                         const DomainFinding&) = default;
};

struct LinkFinding {
  std::string upstream_domain;
  std::string downstream_domain;
  net::HopId upstream_hop = net::kNoHop;
  net::HopId downstream_hop = net::kNoHop;
  LinkReport report;
  /// When inconsistent, these two domains are mutually implicated: one of
  /// them is lying or their shared link is faulty (§3.1's exposure
  /// argument).
  [[nodiscard]] bool implicates_pair() const noexcept {
    return !report.consistent();
  }
  friend bool operator==(const LinkFinding&, const LinkFinding&) = default;
};

/// A stretch of a producer's receipt stream that never reached the
/// verifier intact (ISSUE 6's graceful-degradation contract).  Lost or
/// corrupt envelopes do NOT silently deform findings: the consumer skips
/// the affected reporting round(s), records the damage here, and
/// resynchronizes at the next round mark.  Findings over fully-delivered
/// rounds stay exact; the gap is the explicit record of what is missing.
struct RoundGap {
  enum class Cause : std::uint8_t {
    kLost,     ///< envelope(s) never arrived (dropped, MAC-rejected)
    kCorrupt,  ///< envelope arrived but its payload failed fatal decode
  };
  std::string producer;              ///< producer domain of the stream
  net::HopId hop = net::kNoHop;      ///< HOP whose rounds are missing
  std::uint64_t first_sequence = 0;  ///< envelope sequence range [first,
  std::uint64_t last_sequence = 0;   ///<   last] covered by the gap
  Cause cause = Cause::kLost;
  /// Wire path keys whose receipts were discarded during resync (empty
  /// for a pure loss — nothing was decoded to attribute).
  std::vector<std::uint64_t> affected_paths;
  friend bool operator==(const RoundGap&, const RoundGap&) = default;
};

struct PathAnalysis {
  std::vector<DomainFinding> domains;  ///< transit domains only
  std::vector<LinkFinding> links;
  /// Reporting rounds lost or corrupted in dissemination, in report
  /// order.  Empty on a fault-free (or fully-recovered) stream.
  std::vector<RoundGap> gaps;
  [[nodiscard]] bool all_links_consistent() const noexcept {
    for (const LinkFinding& l : links) {
      if (!l.report.consistent()) return false;
    }
    return true;
  }
  /// True when every reporting round reached the verifier intact.
  [[nodiscard]] bool complete() const noexcept { return gaps.empty(); }
  friend bool operator==(const PathAnalysis&, const PathAnalysis&) = default;
};

/// Collects receipts from every HOP of one path and answers queries.
class PathVerifier {
 public:
  /// Register a HOP's receipts.  Throws std::invalid_argument on duplicate
  /// HOP ids.
  void add_hop(HopReceipts receipts);

  /// Ingest one reporting round of receipts from `hop`: rounds concatenate
  /// per the collector's periodic-drain invariant, so N add_round calls
  /// equal one add_hop of the combined receipts.  This verifier stays the
  /// MATERIALIZED reference (memory grows with history); the round-fed
  /// production counterpart is core::IncrementalPathVerifier.
  void add_round(net::HopId hop, PathDrain round);

  [[nodiscard]] bool has_hop(net::HopId hop) const noexcept {
    return receipts_.contains(hop);
  }

  /// Delay through the domain whose ingress/egress HOPs are given, using
  /// only that domain's receipts.  Throws std::out_of_range for unknown
  /// HOPs.
  [[nodiscard]] DomainDelayReport domain_delay(
      net::HopId ingress, net::HopId egress,
      std::span<const double> quantiles = stats::kDelayQuantiles,
      double confidence = 0.95) const;

  /// Loss through the domain between the two HOPs.
  [[nodiscard]] DomainLossReport domain_loss(net::HopId ingress,
                                             net::HopId egress) const;

  /// Consistency check across the link between two facing HOPs.
  [[nodiscard]] LinkReport check_link(net::HopId up, net::HopId down) const;

  /// Full Fig.-1-style analysis: per-transit-domain loss/delay plus every
  /// link verdict.  Missing HOPs yield empty findings rather than throwing
  /// (partial deployment, Section 8).
  [[nodiscard]] PathAnalysis analyze(const PathLayout& layout) const;

 private:
  [[nodiscard]] const HopReceipts& hop(net::HopId id) const;
  std::map<net::HopId, HopReceipts> receipts_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_VERIFIER_HPP
