// Protocol-wide constants and per-HOP tuning knobs.
//
// The paper distinguishes carefully between system-wide parameters, fixed
// at protocol design time, and locally tunable ones (the whole point of
// Sections 5.2/6.2):
//   * system-wide: the digest definition, the marker threshold mu
//     ("a system-wide constant specified by VPM at design time", §5.1),
//     and the reorder safety window J (§6.3);
//   * per-HOP: the sampling threshold sigma and partition threshold delta
//     ("a local parameter, chosen independently at each HOP");
//   * per-link: MaxDiff, agreed between the two HOPs sharing a link (§4).
#ifndef VPM_CORE_CONFIG_HPP
#define VPM_CORE_CONFIG_HPP

#include <cstdint>
#include <stdexcept>

#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::core {

/// Parameters every HOP in a deployment must share.
struct ProtocolParams {
  net::HeaderSpec header_spec;
  net::DigestMode digest_mode = net::DigestMode::kIndependent;

  /// Marker threshold mu as a rate: fraction of packets that are markers.
  /// The default (1/1000) makes markers ~10 ms apart on the paper's
  /// 100 kpps sequence, matching "ten milliseconds or so" (§5.1).
  double marker_rate = 1e-3;

  /// Reorder safety window J: two packets observed more than J apart are
  /// assumed never reordered.  The paper picks 10 ms, "an order of
  /// magnitude above the millisecond threshold" measured in [10] (§7.1).
  net::Duration reorder_window_j = net::milliseconds(10);

  /// Time-keyed marker rule (0 disables — the default).  Algorithm 1 as
  /// written buffers ~1/marker_rate records per path between markers, so a
  /// slow path (or a slow replay over 100k paths) holds records far beyond
  /// the J-window bound the paper's temp-buffer sizing assumes.  When set,
  /// a packet arriving while the OLDEST buffered record is at least this
  /// old acts as a forced marker: it sweeps the buffer exactly like a
  /// digest-selected marker, bounding both buffered records
  /// (~rate x marker_max_age per path) and record latency.  Protocol-wide
  /// like mu: every HOP of a deployment must use the same value.  Forced
  /// markers are triggered by LOCAL arrival times, so HOPs whose clocks
  /// disagree may force at different packets and transiently diverge in
  /// which buffered records they sample — the same per-packet-membership
  /// coarseness the §6.3 migration rules already tolerate.
  net::Duration marker_max_age{0};

  [[nodiscard]] std::uint32_t marker_threshold() const {
    return net::rate_to_threshold(marker_rate);
  }
  [[nodiscard]] net::DigestEngine make_engine() const noexcept {
    return net::DigestEngine{header_spec, digest_mode};
  }
};

/// Per-HOP resource tuning (Section 2.2, Tunability).
struct HopTuning {
  /// Target fraction of packets delay-sampled.  Note markers are always
  /// sampled, so the achieved rate is ~ marker_rate + (1-marker_rate) *
  /// sample_rate_excess; we expose the *total* target and derive sigma.
  double sample_rate = 0.01;

  /// Target aggregates-per-packet (e.g. 1e-5 = one aggregate per 100 000
  /// packets, the paper's Figure-3 setting).
  double cut_rate = 1e-5;
};

/// Derive the SampleFcn threshold sigma for a total target sampling rate
/// given the protocol's marker rate.  Throws std::invalid_argument if the
/// target is below the marker rate (markers are always sampled, so rates
/// below marker_rate are unreachable — the caller asked for less than the
/// protocol floor) or above 1.
[[nodiscard]] inline std::uint32_t sample_threshold_for(
    const ProtocolParams& params, double total_sample_rate) {
  if (total_sample_rate > 1.0) {
    throw std::invalid_argument("sample rate > 1");
  }
  const double m = params.marker_rate;
  if (total_sample_rate < m) {
    throw std::invalid_argument(
        "target sample rate below the marker rate: markers alone exceed it");
  }
  if (m >= 1.0) return net::rate_to_threshold(0.0);
  const double excess = (total_sample_rate - m) / (1.0 - m);
  return net::rate_to_threshold(excess);
}

/// Derive the partition threshold delta for a target cut rate.
[[nodiscard]] inline std::uint32_t cut_threshold_for(double cut_rate) {
  return net::rate_to_threshold(cut_rate);
}

}  // namespace vpm::core

#endif  // VPM_CORE_CONFIG_HPP
