#include "core/verifier.hpp"

#include <stdexcept>
#include <unordered_map>

namespace vpm::core {

void PathVerifier::add_hop(HopReceipts receipts) {
  if (receipts_.contains(receipts.hop)) {
    throw std::invalid_argument("duplicate receipts for HOP " +
                                std::to_string(receipts.hop));
  }
  receipts_.emplace(receipts.hop, std::move(receipts));
}

void PathVerifier::add_round(net::HopId hop, PathDrain round) {
  const auto it = receipts_.find(hop);
  if (it == receipts_.end()) {
    receipts_.emplace(hop,
                      HopReceipts{.hop = hop,
                                  .samples = std::move(round.samples),
                                  .aggregates = std::move(round.aggregates)});
    return;
  }
  HopReceipts& r = it->second;
  r.samples.samples.insert(
      r.samples.samples.end(),
      std::make_move_iterator(round.samples.samples.begin()),
      std::make_move_iterator(round.samples.samples.end()));
  r.aggregates.insert(r.aggregates.end(),
                      std::make_move_iterator(round.aggregates.begin()),
                      std::make_move_iterator(round.aggregates.end()));
}

const HopReceipts& PathVerifier::hop(net::HopId id) const {
  const auto it = receipts_.find(id);
  if (it == receipts_.end()) {
    throw std::out_of_range("no receipts for HOP " + std::to_string(id));
  }
  return it->second;
}

DomainDelayReport PathVerifier::domain_delay(net::HopId ingress,
                                             net::HopId egress,
                                             std::span<const double> quantiles,
                                             double confidence) const {
  const SampleReceipt& in = hop(ingress).samples;
  const SampleReceipt& out = hop(egress).samples;

  DomainDelayReport report;
  // Match sampled packets between the domain's own two HOPs by PktID.
  std::unordered_map<net::PacketDigest, net::Timestamp> ingress_times;
  ingress_times.reserve(in.samples.size() * 2);
  for (const SampleRecord& s : in.samples) {
    ingress_times.emplace(s.pkt_id, s.time);
  }
  report.sample_delays_ms.reserve(out.samples.size());
  for (const SampleRecord& s : out.samples) {
    const auto it = ingress_times.find(s.pkt_id);
    if (it == ingress_times.end()) continue;
    report.sample_delays_ms.push_back((s.time - it->second).milliseconds());
  }
  report.common_samples = report.sample_delays_ms.size();
  if (report.common_samples > 0) {
    stats::QuantileEstimator estimator;
    estimator.add_all(report.sample_delays_ms);
    report.quantiles = estimator.estimate_many(quantiles, confidence);
  }
  return report;
}

DomainLossReport PathVerifier::domain_loss(net::HopId ingress,
                                           net::HopId egress) const {
  const std::vector<AggregateReceipt>& in = hop(ingress).aggregates;
  const std::vector<AggregateReceipt>& out = hop(egress).aggregates;

  DomainLossReport report;
  const AlignmentResult aligned = align_aggregates(in, out, true);
  report.joined_aggregates = aligned.aligned.size();
  report.patchup_migrations = aligned.migrations;
  double total_s = 0.0;
  for (const AlignedAggregate& a : aligned.aligned) {
    report.offered += a.up_count;
    report.delivered += a.down_count;
    const double s = a.duration_s();
    total_s += s;
    if (s > report.max_granularity_s) report.max_granularity_s = s;
  }
  if (!aligned.aligned.empty()) {
    report.mean_granularity_s =
        total_s / static_cast<double>(aligned.aligned.size());
  }
  report.details = std::move(aligned.aligned);
  return report;
}

LinkReport PathVerifier::check_link(net::HopId up, net::HopId down) const {
  const HopReceipts& u = hop(up);
  const HopReceipts& d = hop(down);
  return LinkReport{
      .samples = check_link_samples(u.samples, d.samples),
      .aggregates = check_link_aggregates(u.aggregates, d.aggregates),
  };
}

PathAnalysis PathVerifier::analyze(const PathLayout& layout) const {
  if (layout.hops.size() != layout.domain_of.size()) {
    throw std::invalid_argument("layout hops/domains size mismatch");
  }
  PathAnalysis analysis;

  // Walk consecutive HOP pairs: within one domain they bracket a transit
  // domain; across domains they bracket an inter-domain link.
  for (std::size_t i = 0; i + 1 < layout.hops.size(); ++i) {
    const net::HopId a = layout.hops[i];
    const net::HopId b = layout.hops[i + 1];
    const bool have_both = has_hop(a) && has_hop(b);
    if (layout.domain_of[i] == layout.domain_of[i + 1]) {
      DomainFinding f;
      f.domain = layout.domain_of[i];
      f.ingress = a;
      f.egress = b;
      if (have_both) {
        f.delay = domain_delay(a, b);
        f.loss = domain_loss(a, b);
      }
      analysis.domains.push_back(std::move(f));
    } else {
      LinkFinding f;
      f.upstream_domain = layout.domain_of[i];
      f.downstream_domain = layout.domain_of[i + 1];
      f.upstream_hop = a;
      f.downstream_hop = b;
      if (have_both) {
        f.report = check_link(a, b);
      }
      analysis.links.push_back(std::move(f));
    }
  }
  return analysis;
}

}  // namespace vpm::core
