// Structure-of-arrays per-path monitoring state and the per-packet kernels.
//
// The paper's §7.1 hardware argument is that per-path collector state is
// "roughly 20 bytes" — an open AggId, PktCnt and a PathID reference — so
// 100k paths fit in ~2 MB of SRAM and each packet costs three memory
// accesses.  The software collector lives that arithmetic here: the state
// Algorithms 1 and 2 touch on EVERY packet is packed into one contiguous
// 32-byte `PathHot` record per path (half a cache line), with everything
// else split out by access frequency:
//
//   hot   PathSlot[path].hot   (32 B)  open AggId + PktCnt + last-packet
//                              time + temp-buffer size + J-ring head/size
//   warm  PathSlot[path].warm  (32 B)  arena addressing (written only on
//                              slice growth), the open aggregate's
//                              opened_at, the pending-window count and the
//                              J-ring high-water mark — co-located with
//                              the hot record so the ENTIRE per-packet
//                              read-modify-write set is one 64-byte line
//   stats PathStats[path]      §7.1 counters touched only at markers/cuts
//   data  buf_arena/ring_arena per-path temp-buffer and J-ring slices in
//                              two shared arenas (grow-by-relocation; a
//                              path with no traffic owns no arena bytes)
//   cold  emitted/pending/closed  receipts awaiting a control-plane
//                              drain, as per-path vectors (touched only at
//                              markers, cuts and drains)
//
// The kernels below are the ONE implementation of the Algorithm 1/2
// per-packet steps: DelaySampler and Aggregator wrap a 1-path block of
// this storage, HopMonitor wraps a fused 1-path block, and
// MonitoringCache runs the same kernels over an N-path block.  Receipt
// streams are byte-identical to the pre-SoA per-object implementation
// (pinned by tests/soa_equivalence_test.cpp).
#ifndef VPM_CORE_PATH_STATE_HPP
#define VPM_CORE_PATH_STATE_HPP

#include <algorithm>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::core {

/// Thresholds shared by every path of one monitoring cache.  ONE copy per
/// cache — the pre-SoA layout duplicated these (plus three DigestEngine
/// copies) into each of 100k per-path monitor objects.
struct PathParams {
  std::uint32_t marker_threshold = 0;  ///< mu (system-wide)
  std::uint32_t sample_threshold = 0;  ///< sigma (local tuning)
  std::uint32_t cut_threshold = 0;     ///< delta (local tuning)
  net::Duration j_window{0};           ///< reorder safety window J
  /// Time-keyed marker rule (see ProtocolParams::marker_max_age): a packet
  /// arriving while the oldest buffered record is at least this old acts
  /// as a forced marker.  0 disables (the paper-faithful default).
  net::Duration marker_max_age{0};
};

/// The state a packet touches on the data-plane fast path, one contiguous
/// record per path.  `agg_count == 0` encodes "no open aggregate" (the
/// pre-SoA std::optional<Open>).  Kept to half a cache line so two paths
/// share a line and a packet's read-modify-write stays within one.
struct PathHot {
  net::PacketDigest agg_first = 0;  ///< open AggId.first
  net::PacketDigest agg_last = 0;   ///< open AggId.last
  std::uint32_t agg_count = 0;      ///< open PktCnt; 0 == no open aggregate
  std::uint32_t buf_size = 0;       ///< temp-buffer records awaiting a marker
  std::uint32_t ring_head = 0;      ///< J-ring logical head (masked)
  std::uint32_t ring_size = 0;      ///< J-ring occupancy
  std::int64_t last_at_ns = 0;      ///< open aggregate's last-packet time
};
static_assert(sizeof(PathHot) == 32,
              "PathHot must stay within the paper's ~20-32 B/path budget");
static_assert(std::is_trivially_copyable_v<PathHot>);

/// Arena addressing for one path's temp-buffer and J-ring slices, plus the
/// rarely-written remainder of the per-packet state: the open aggregate's
/// opened_at (written once per aggregate), the pending-AggTrans-window
/// count (mirrors pending[path].size() so the fast path never reads the
/// cold vector header) and the J-ring high-water mark.
struct PathWarm {
  std::uint32_t buf_begin = 0;  ///< offset into buf_arena
  std::uint32_t buf_cap = 0;    ///< slice capacity (0 until first packet)
  std::uint32_t ring_begin = 0; ///< offset into ring_arena
  std::uint32_t ring_cap = 0;   ///< power of two (0 until first packet)
  std::int64_t opened_at_ns = 0;  ///< open aggregate's first-packet time
  std::uint32_t pend_count = 0; ///< == pending[path].size()
  std::uint32_t window_peak = 0;  ///< J-ring high-water mark (records)
};
static_assert(sizeof(PathWarm) == 32);

/// One path's per-packet working set: the hot record plus its warm
/// addressing half, packed into a single 64-byte cache line — the 100k-path
/// observe loop touches exactly one line of path state per packet (plus
/// the path's arena slices).
struct alignas(64) PathSlot {
  PathHot hot;
  PathWarm warm;
};
static_assert(sizeof(PathSlot) == 64);

/// One buffered <digest, time> record (§7.1's 7-byte PktID+Time entry).
struct TimedDigest {
  net::PacketDigest id = 0;
  net::Timestamp time;
};

/// Per-path statistics (the reporting surface of the pre-SoA
/// DelaySampler/Aggregator accessors).  Touched only at markers and cuts,
/// never on the per-packet fast path: `observed` is derivable (every
/// packet is either buffered or a marker, so observed == swept + markers
/// + the current buffer size — see path_observed_packets) and
/// `buffer_peak` records the pre-sweep size at each marker (the buffer
/// grows monotonically between sweeps, so the lifetime high-water mark is
/// max(buffer_peak, current buffer size) — see path_buffer_peak).
struct PathStats {
  std::uint64_t markers = 0;   ///< Algorithm 1 markers seen
  std::uint64_t swept = 0;     ///< buffered records evaluated at markers
  std::uint64_t cuts = 0;      ///< Algorithm 2 cutting points seen
  std::uint64_t buffer_peak = 0;  ///< max pre-sweep temp-buffer size
  /// Temp-buffer records discarded undecided by TTL eviction (their fate
  /// was never resolved by a marker) — keeps the observed-packet
  /// derivation honest across evictions.
  std::uint64_t dropped_buffered = 0;
  /// Undrained-sample high-water mark: the largest emitted[path].size()
  /// reached (updated at sweeps, the only place samples are emitted) —
  /// with capacity-retaining drains this bounds the per-path sample
  /// capacity a live path can pin (see emitted_peak_records).
  std::uint64_t emitted_peak = 0;
  /// Consecutive lifecycle passes the temp buffer / J-ring spent below a
  /// quarter of capacity — path_decay's trigger state, reset by any busy
  /// pass and after each halving.  Touched only at lifecycle passes.
  std::uint32_t buf_low_streak = 0;
  std::uint32_t ring_low_streak = 0;
  /// Same trigger state for the emitted-sample vector's retained capacity.
  std::uint32_t emitted_low_streak = 0;
};

/// A closed aggregate before PathId stamping (the HopMonitor /
/// MonitoringCache drain adds that).
struct AggregateData {
  AggId agg;
  std::uint32_t packet_count = 0;
  TransWindow trans;
  net::Timestamp opened_at;
  net::Timestamp closed_at;
};

/// A closed aggregate whose trailing AggTrans window is still filling.
struct PendingAggregate {
  AggregateData data;
  net::Timestamp boundary;  ///< cut time; window completes at boundary+J
};

/// The structure-of-arrays block the kernels operate on.  Members are
/// public by design: this IS the SoA view — DelaySampler, Aggregator,
/// HopMonitor and MonitoringCache are facades over (slices of) it.
struct PathStateSoA {
  PathStateSoA(const PathParams& p, std::size_t path_count)
      : params(p),
        slots(path_count),
        stats(path_count),
        emitted(path_count),
        pending(path_count),
        closed(path_count) {}

  /// Marker-sweep kernel invocations by SIMD tier (one count per marker
  /// that swept a non-empty buffer; §7.1 observability, receipt-invisible).
  /// Lives on the SoA block so the facades and the monitoring cache share
  /// one accounting point with the kernels.
  struct SweepKernelCounters {
    std::uint64_t scalar = 0;
    std::uint64_t avx2 = 0;
  };

  PathParams params;
  std::vector<PathSlot> slots;
  std::vector<PathStats> stats;
  SweepKernelCounters sweep_kernels;
  /// Shared arenas holding every path's temp-buffer / J-ring slice.  A
  /// slice that outgrows its capacity relocates to the arena tail
  /// (doubling); the abandoned slice is bounded garbage — geometric
  /// growth keeps total garbage below total live capacity.
  std::vector<TimedDigest> buf_arena;
  std::vector<TimedDigest> ring_arena;
  /// Cold receipt state, drained by the control plane.
  std::vector<std::vector<SampleRecord>> emitted;
  std::vector<std::vector<PendingAggregate>> pending;
  std::vector<std::vector<AggregateData>> closed;

  [[nodiscard]] std::size_t path_count() const noexcept {
    return slots.size();
  }
  /// The open-receipt (hot-record) footprint — what a hardware monitoring
  /// cache would hold in SRAM (the paper's "2 MB for 100k paths").
  [[nodiscard]] std::size_t hot_bytes() const noexcept {
    return slots.size() * sizeof(PathHot);
  }
  /// Resident per-path slot bytes (hot + warm line per path).
  [[nodiscard]] std::size_t slot_bytes() const noexcept {
    return slots.size() * sizeof(PathSlot);
  }
  /// Resident arena bytes (temp buffers + J rings, including slack and
  /// relocation garbage) — the software analogue of the §7.1 temp buffer.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return (buf_arena.size() + ring_arena.size()) * sizeof(TimedDigest);
  }
  /// Arena bytes addressed by some path's live slice (its reserved
  /// capacity) — what compaction retains.
  [[nodiscard]] std::size_t arena_live_bytes() const noexcept {
    std::size_t records = 0;
    for (const PathSlot& s : slots) {
      records += s.warm.buf_cap;
      records += s.warm.ring_cap;
    }
    return records * sizeof(TimedDigest);
  }
  /// Arena bytes no slice addresses any more (grow-by-relocation leftovers
  /// and evicted paths' slices) — what compaction reclaims.
  [[nodiscard]] std::size_t arena_garbage_bytes() const noexcept {
    return arena_bytes() - arena_live_bytes();
  }
  /// Records currently awaiting a marker, across all paths.
  [[nodiscard]] std::size_t buffered_records() const noexcept {
    std::size_t n = 0;
    for (const PathSlot& s : slots) n += s.hot.buf_size;
    return n;
  }
  /// Sum of per-path temp-buffer high-water marks.
  [[nodiscard]] std::size_t buffer_peak_records() const noexcept {
    std::size_t n = 0;
    for (std::size_t p = 0; p < slots.size(); ++p) {
      n += path_buffer_peak(p);
    }
    return n;
  }
  /// One path's lifetime temp-buffer high-water mark (records): the
  /// largest pre-sweep size seen, or the still-growing current size.
  [[nodiscard]] std::size_t path_buffer_peak(std::size_t path) const {
    return std::max<std::size_t>(stats[path].buffer_peak,
                                 slots[path].hot.buf_size);
  }
  /// Largest undrained-sample backlog any single path has reached
  /// (records).  Drains retain emitted capacity (path_take_samples), so
  /// this is the figure that proves the retained heap stays bounded by
  /// actual backlog rather than ratcheting: retained capacity per path
  /// never exceeds ~2x its peak (vector doubling) until decay or eviction
  /// releases it.
  [[nodiscard]] std::size_t emitted_peak_records() const noexcept {
    std::size_t n = 0;
    for (std::size_t p = 0; p < slots.size(); ++p) {
      n = std::max<std::size_t>(
          n, std::max<std::size_t>(stats[p].emitted_peak, emitted[p].size()));
    }
    return n;
  }
  /// One path's observed-packet count, reconstructed from marker-time
  /// counters (every packet is either buffered, a marker, or was dropped
  /// undecided by an eviction).
  [[nodiscard]] std::uint64_t path_observed_packets(std::size_t path) const {
    return stats[path].swept + stats[path].markers +
           stats[path].dropped_buffered + slots[path].hot.buf_size;
  }
  /// True if the path owns any resident monitoring state — arena slices,
  /// an open aggregate, or undrained receipts.  (A path that never saw
  /// traffic, or was evicted and stayed idle, holds nothing.)
  [[nodiscard]] bool path_has_state(std::size_t path) const {
    const PathSlot& s = slots[path];
    return s.warm.buf_cap != 0 || s.warm.ring_cap != 0 ||
           s.hot.agg_count != 0 || s.warm.pend_count != 0 ||
           !emitted[path].empty() || !closed[path].empty();
  }
};

// --- Epoch lifecycle (compaction + eviction) ------------------------------
//
// The arenas grow by slice relocation and, without intervention, never
// shrink: garbage stays bounded below live capacity, but "live capacity"
// includes every path that EVER saw traffic.  For month-long runs with a
// churning path population the control plane retires state in two steps:
// evict paths idle beyond a TTL (the cache drains their receipts through
// the normal sink path first), then compact the arenas when relocation +
// eviction garbage crosses a watermark.

/// Release path `path`'s resident state: arena slices become garbage
/// (reclaimed by the next compaction), the hot/warm records reset to the
/// never-saw-traffic state, and the cold receipt vectors release their
/// capacity.  Returns the number of temp-buffer records dropped undecided
/// (also accumulated into stats[path].dropped_buffered).
///
/// PRECONDITION: the caller has drained the path's receipts (samples +
/// aggregates with flush_open) — this is storage-level reclamation and
/// silently discards anything still pending.  Cumulative PathStats
/// survive.  A revived path regrows slices lazily, exactly like a path
/// seeing its first packet.
std::size_t path_evict(PathStateSoA& s, std::size_t path);

/// Rebuild both arenas tightly in path order, dropping all garbage while
/// preserving each slice's reserved capacity (so growth stays amortised
/// O(1)) and linearising rings (head -> 0, as slice growth already does).
/// Receipt-invisible.  Returns the arena bytes reclaimed.
std::size_t path_state_compact(PathStateSoA& s);

/// What one path_decay call did.  Arena-slice and emitted-capacity decay
/// report separately: released arena halves become garbage the next
/// compaction reclaims and feed the arena accounting, while emitted
/// capacity is ordinary heap returned to the allocator immediately.
struct PathDecay {
  std::size_t halved_slices = 0;   ///< 0..2 (temp buffer and/or J-ring)
  std::size_t released_bytes = 0;  ///< live capacity turned to garbage
  std::size_t halved_emitted = 0;  ///< 0..1 (emitted-sample capacity)
  std::size_t released_emitted_bytes = 0;  ///< heap freed by that halving
};

/// Live-capacity decay — the shrink half of the grow-by-doubling slices.
/// One lifecycle observation of `path`'s slice occupancy: a slice whose
/// occupancy has stayed strictly below a QUARTER of its capacity for
/// `low_streak` consecutive observations is halved — in place for the
/// temp buffer (live records already sit at the slice front) and by
/// linearising for the J-ring (entries move to the slice front, head
/// resets, capacity stays a power of two) — flooring at the initial
/// slice sizes.  The released half becomes arena garbage that the next
/// path_state_compact reclaims, so a traffic spike's capacity ratchet
/// decays back down instead of pinning arena_live_bytes at the spike
/// level forever.  The emitted-sample vector's retained capacity (drains
/// keep it; see path_take_samples) decays under the same
/// quarter-occupancy/streak rule, flooring at a small initial capacity.
/// Receipt-invisible.  `low_streak == 0` disables.
PathDecay path_decay(PathStateSoA& s, std::size_t path,
                     std::uint32_t low_streak);

// --- Per-packet kernels ---------------------------------------------------
//
// These are the Algorithm 1/2 per-packet steps extracted from the pre-SoA
// DelaySampler::observe / Aggregator::observe, operating on one path of a
// PathStateSoA block.  Receipt-affecting behaviour is identical; only the
// storage layout changed.

/// Algorithm 1 (DelaySample) per-packet step.  Returns the number of
/// buffered records swept (0 unless the packet is a marker) — the §7.1
/// marker-sweep accounting.  Does not touch stats.observed (the caller
/// counts the packet exactly once; see path_observe).
std::size_t path_observe_sampler(PathStateSoA& s, std::size_t path,
                                 const net::PacketDecisions& d,
                                 net::Timestamp when);

/// Algorithm 2 (Partition + AggTrans) per-packet step.  Does not touch
/// stats.observed.
void path_observe_aggregator(PathStateSoA& s, std::size_t path,
                             const net::PacketDecisions& d,
                             net::Timestamp when);

/// The fused per-path data-plane step: sampler then aggregator (the order
/// the pre-SoA HopMonitor::observe used).  Returns the marker-sweep
/// record count.
inline std::size_t path_observe(PathStateSoA& s, std::size_t path,
                                const net::PacketDecisions& d,
                                net::Timestamp when) {
  const std::size_t swept = path_observe_sampler(s, path, d, when);
  path_observe_aggregator(s, path, d, when);
  return swept;
}

/// Drain the samples emitted so far (observation order).  Packets still in
/// the temp buffer stay buffered — their fate is not yet decided.  The
/// path's emitted vector keeps its capacity across the drain (a busy path
/// re-fills it every reporting round; the old swap-release made each round
/// re-grow the vector from zero through the allocator) — path_decay
/// shrinks it when the path quiets down and path_evict still releases it
/// entirely.
[[nodiscard]] std::vector<SampleRecord> path_take_samples(PathStateSoA& s,
                                                          std::size_t path);

/// Drain aggregates whose trailing AggTrans window is complete.
[[nodiscard]] std::vector<AggregateData> path_take_closed(PathStateSoA& s,
                                                          std::size_t path);

/// Close and return the still-open aggregate (end of a measurement run).
/// Pending aggregates are finalised first — call path_take_closed()
/// afterwards to drain everything.
[[nodiscard]] std::optional<AggregateData> path_flush_open(PathStateSoA& s,
                                                           std::size_t path);

// --- Receipt drains (the control-plane surface) ---------------------------
//
// The ONE place drained state is stamped into receipts — HopMonitor and
// MonitoringCache both delegate here, so the receipt ordering contract
// (with flush_open: finalise pending, drain closed, then append the
// flushed open aggregate) has a single implementation.

/// Drain path `path`'s samples into a receipt stamped with `id`.
[[nodiscard]] SampleReceipt path_collect_samples(PathStateSoA& s,
                                                 std::size_t path,
                                                 const net::PathId& id);

/// Drain path `path`'s closed aggregates into receipts stamped with `id`;
/// with `flush_open`, also closes the current aggregate (last in the
/// returned stream).
[[nodiscard]] std::vector<AggregateReceipt> path_collect_aggregates(
    PathStateSoA& s, std::size_t path, const net::PathId& id,
    bool flush_open);

}  // namespace vpm::core

#endif  // VPM_CORE_PATH_STATE_HPP
