#include "core/receipt_sink.hpp"

#include <stdexcept>
#include <utility>

namespace vpm::core {

void emit_drain(ReceiptSink& sink, std::size_t path_index, PathDrain drain) {
  // The sample receipt carries the PathId; hand it to begin_path before
  // moving the receipt out.
  sink.begin_path(path_index, drain.samples.path);
  sink.on_samples(std::move(drain.samples));
  for (AggregateReceipt& r : drain.aggregates) {
    sink.on_aggregate(std::move(r));
  }
  sink.end_path();
}

void emit_stream(ReceiptSink& sink, std::vector<IndexedPathDrain> stream) {
  for (IndexedPathDrain& d : stream) {
    emit_drain(sink, d.path, std::move(d.drain));
  }
}

void VectorSink::begin_path(std::size_t path_index, const net::PathId&) {
  if (open_) {
    throw std::logic_error("VectorSink: begin_path without end_path");
  }
  open_ = true;
  stream_.push_back(IndexedPathDrain{.path = path_index, .drain = {}});
}

void VectorSink::on_samples(SampleReceipt samples) {
  if (!open_) {
    throw std::logic_error("VectorSink: on_samples outside a path");
  }
  stream_.back().drain.samples = std::move(samples);
}

void VectorSink::on_aggregate(AggregateReceipt aggregate) {
  if (!open_) {
    throw std::logic_error("VectorSink: on_aggregate outside a path");
  }
  stream_.back().drain.aggregates.push_back(std::move(aggregate));
}

void VectorSink::end_path() {
  if (!open_) {
    throw std::logic_error("VectorSink: end_path without begin_path");
  }
  open_ = false;
}

}  // namespace vpm::core
