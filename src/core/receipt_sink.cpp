#include "core/receipt_sink.hpp"

#include <stdexcept>
#include <utility>

namespace vpm::core {

void emit_drain(ReceiptSink& sink, std::size_t path_index, PathDrain drain) {
  // The sample receipt carries the PathId; hand it to begin_path before
  // moving the receipt out.
  sink.begin_path(path_index, drain.samples.path);
  sink.on_samples(std::move(drain.samples));
  for (AggregateReceipt& r : drain.aggregates) {
    sink.on_aggregate(std::move(r));
  }
  sink.end_path();
}

void emit_stream(ReceiptSink& sink, std::vector<IndexedPathDrain> stream) {
  for (IndexedPathDrain& d : stream) {
    emit_drain(sink, d.path, std::move(d.drain));
  }
}

void VectorSink::begin_path(std::size_t path_index, const net::PathId&) {
  if (open_) {
    throw std::logic_error("VectorSink: begin_path without end_path");
  }
  open_ = true;
  stream_.push_back(IndexedPathDrain{.path = path_index, .drain = {}});
}

void VectorSink::on_samples(SampleReceipt samples) {
  if (!open_) {
    throw std::logic_error("VectorSink: on_samples outside a path");
  }
  stream_.back().drain.samples = std::move(samples);
}

void VectorSink::on_aggregate(AggregateReceipt aggregate) {
  if (!open_) {
    throw std::logic_error("VectorSink: on_aggregate outside a path");
  }
  stream_.back().drain.aggregates.push_back(std::move(aggregate));
}

void VectorSink::end_path() {
  if (!open_) {
    throw std::logic_error("VectorSink: end_path without begin_path");
  }
  open_ = false;
}

DrainRoundSink::DrainRoundSink(Consumer consumer)
    : consumer_(std::move(consumer)) {
  if (!consumer_) {
    throw std::invalid_argument("DrainRoundSink: null consumer");
  }
}

void DrainRoundSink::begin_path(std::size_t path_index,
                                const net::PathId& id) {
  if (open_) {
    throw std::logic_error("DrainRoundSink: begin_path without end_path");
  }
  open_ = true;
  index_ = path_index;
  id_ = id;
  current_ = PathDrain{};
}

void DrainRoundSink::on_samples(SampleReceipt samples) {
  if (!open_) {
    throw std::logic_error("DrainRoundSink: on_samples outside a path");
  }
  current_.samples = std::move(samples);
}

void DrainRoundSink::on_aggregate(AggregateReceipt aggregate) {
  if (!open_) {
    throw std::logic_error("DrainRoundSink: on_aggregate outside a path");
  }
  current_.aggregates.push_back(std::move(aggregate));
}

void DrainRoundSink::end_path() {
  if (!open_) {
    throw std::logic_error("DrainRoundSink: end_path without begin_path");
  }
  open_ = false;
  consumer_(index_, id_, std::move(current_));
}

}  // namespace vpm::core
