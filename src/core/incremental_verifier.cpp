#include "core/incremental_verifier.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "stats/quantile.hpp"

namespace vpm::core {

IncrementalPathVerifier::IncrementalPathVerifier(Config cfg)
    : cfg_(std::move(cfg)) {
  const PathLayout& layout = cfg_.layout;
  if (layout.hops.size() != layout.domain_of.size()) {
    throw std::invalid_argument(
        "IncrementalPathVerifier: layout hops/domains size mismatch");
  }
  if (cfg_.retain_rounds == 0) {
    throw std::invalid_argument(
        "IncrementalPathVerifier: retain_rounds must be >= 1");
  }
  for (std::size_t i = 0; i + 1 < layout.hops.size(); ++i) {
    Pair p;
    p.is_domain = layout.domain_of[i] == layout.domain_of[i + 1];
    p.up_pos = i;
    p.down_pos = i + 1;
    pairs_.push_back(std::move(p));
  }
}

std::uint64_t IncrementalPathVerifier::rounds_ingested(net::HopId hop) const {
  const auto it = rounds_.find(hop);
  return it == rounds_.end() ? 0 : it->second;
}

std::uint64_t IncrementalPathVerifier::pair_clock(const Pair& p) const {
  return std::max(rounds_ingested(cfg_.layout.hops[p.up_pos]),
                  rounds_ingested(cfg_.layout.hops[p.down_pos]));
}

void IncrementalPathVerifier::add_round(net::HopId hop, PathDrain round) {
  const std::vector<net::HopId>& hops = cfg_.layout.hops;
  if (std::find(hops.begin(), hops.end(), hop) == hops.end()) {
    throw std::invalid_argument(
        "IncrementalPathVerifier: HOP not in layout: " + std::to_string(hop));
  }
  ++rounds_[hop];
  HopInfo& info = hop_info_[hop];
  if (!info.seen) {
    info.seen = true;
    info.max_diff = round.samples.path.max_diff;
    info.sample_threshold = round.samples.sample_threshold;
  }

  for (Pair& p : pairs_) {
    const bool as_up = hops[p.up_pos] == hop;
    const bool as_down = hops[p.down_pos] == hop;
    if (!as_up && !as_down) continue;
    if (as_up) {
      p.is_domain ? feed_domain(p, true, round) : feed_link(p, true, round);
    }
    if (as_down) {
      p.is_domain ? feed_domain(p, false, round)
                  : feed_link(p, false, round);
    }
    settle_pair(p);
  }
}

void IncrementalPathVerifier::feed_domain(Pair& p, bool is_up,
                                          const PathDrain& round) {
  const std::uint64_t clock = pair_clock(p);
  if (is_up) {
    // Ingress side: remember every sampled packet's time (markers
    // included — the batch matcher indexes them too; first record wins on
    // a digest collision, as emplace does there).  Records for one digest
    // arrive in stream order, so the first resident record is always the
    // stream-first one — matching against it here gives the same delay
    // the batch matcher computes, whichever side was fed first.
    for (const SampleRecord& s : round.samples.samples) {
      p.delay.ingress_times.emplace(s.pkt_id,
                                    DelayState::Entry{s.time, clock});
    }
    // Resolve egress samples that were buffered waiting for this side.
    std::vector<DelayState::PendingEgress>& pe = p.delay.pending_egress;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pe.size(); ++i) {
      const auto it = p.delay.ingress_times.find(pe[i].digest);
      if (it == p.delay.ingress_times.end()) {
        pe[keep++] = pe[i];
        continue;
      }
      it->second.matched = true;
      p.delay.delays.emplace_back(
          pe[i].order, (pe[i].time - it->second.time).milliseconds());
    }
    pe.resize(keep);
    p.loss.tail.up.insert(p.loss.tail.up.end(), round.aggregates.begin(),
                          round.aggregates.end());
  } else {
    // Egress side: under lockstep feeding (upstream HOPs first within a
    // reporting round) the ingress record is already resident.  When the
    // HOPs' fetch loops drift apart, buffer the sample instead of losing
    // the match — the ingress round is late, not absent.
    for (const SampleRecord& s : round.samples.samples) {
      const std::uint64_t order = p.delay.egress_seen++;
      const auto it = p.delay.ingress_times.find(s.pkt_id);
      if (it == p.delay.ingress_times.end()) {
        p.delay.pending_egress.push_back(
            DelayState::PendingEgress{s.pkt_id, s.time, order, clock});
        continue;
      }
      it->second.matched = true;
      p.delay.delays.emplace_back(
          order, (s.time - it->second.time).milliseconds());
    }
    p.loss.tail.down.insert(p.loss.tail.down.end(), round.aggregates.begin(),
                            round.aggregates.end());
  }
}

void IncrementalPathVerifier::feed_link(Pair& p, bool is_up,
                                        const PathDrain& round) {
  const std::uint64_t clock = pair_clock(p);
  LinkSamplesState& ls = p.link_samples;
  if (is_up) {
    ls.up_splitter.feed(round.samples.samples, [&](SampleRound&& r) {
      ls.pending_up.push_back(
          LinkSamplesState::Stamped{std::move(r), clock});
    });
    p.link_aggregates.tail.up.insert(p.link_aggregates.tail.up.end(),
                                     round.aggregates.begin(),
                                     round.aggregates.end());
  } else {
    ls.down_splitter.feed(round.samples.samples, [&](SampleRound&& r) {
      const net::PacketDigest marker = r.marker_id;
      ls.down_by_marker.emplace(
          marker, LinkSamplesState::Stamped{std::move(r), clock});
    });
    p.link_aggregates.tail.down.insert(p.link_aggregates.tail.down.end(),
                                       round.aggregates.begin(),
                                       round.aggregates.end());
  }
}

void IncrementalPathVerifier::settle_pair(Pair& p) {
  const std::uint64_t clock = pair_clock(p);
  const auto expired = [&](std::uint64_t seen) {
    return clock > seen && clock - seen > cfg_.retain_rounds;
  };

  if (p.is_domain) {
    // Finalize aligned aggregates past the stability margin.
    const TailConsumeStats consumed = consume_aligned_prefix(
        p.loss.tail, cfg_.margin_boundaries, p.loss.groups);
    p.loss.consumed_migrations += consumed.migrations;
    // Expire ingress sample entries past retention (matched entries must
    // linger the same window: a later duplicate egress sample matches
    // again in the batch semantics).
    auto& map = p.delay.ingress_times;
    for (auto it = map.begin(); it != map.end();) {
      if (expired(it->second.round)) {
        if (!it->second.matched) ++p.delay.expired;
        it = map.erase(it);
      } else {
        ++it;
      }
    }
    // Buffered egress samples age out on the same clock: an upstream
    // round still absent past retention is a gap, not a late fetch.
    std::vector<DelayState::PendingEgress>& pe = p.delay.pending_egress;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pe.size(); ++i) {
      if (expired(pe[i].round)) {
        ++p.delay.expired;
      } else {
        pe[keep++] = pe[i];
      }
    }
    pe.resize(keep);
    return;
  }

  LinkSamplesState& ls = p.link_samples;
  const HopInfo& up_info = hop_info_[cfg_.layout.hops[p.up_pos]];
  const HopInfo& down_info = hop_info_[cfg_.layout.hops[p.down_pos]];
  // Resolve pending upstream rounds strictly FIFO — the batch check walks
  // upstream rounds in stream order, so a blocked head must stall its
  // successors to keep the accumulated output identical.
  while (!ls.pending_up.empty()) {
    LinkSamplesState::Stamped& head = ls.pending_up.front();
    const auto match = ls.down_by_marker.find(head.round.marker_id);
    if (match != ls.down_by_marker.end()) {
      check_sample_round_pair(head.round, match->second.round,
                              up_info.max_diff, up_info.sample_threshold,
                              down_info.sample_threshold, ls.accumulated);
      ls.down_by_marker.erase(match);
      ls.pending_up.pop_front();
      continue;
    }
    if (!expired(head.seen)) break;
    // §5.3: a marker the upstream HOP delivered that the downstream HOP
    // has not reported within the retention window is a link loss or a
    // lie — the same verdict the batch check reaches over full streams.
    // Still counted as a retention expiry: a LATER-than-window downstream
    // round would have matched in the batch check.
    ls.accumulated.violations.push_back(Inconsistency{
        InconsistencyKind::kMarkerMissing, head.round.marker_id, 0.0});
    ++ls.expired;
    ls.pending_up.pop_front();
  }
  // Downstream rounds nobody claimed: the batch check silently ignores
  // them; drop past retention to bound the map.
  for (auto it = ls.down_by_marker.begin(); it != ls.down_by_marker.end();) {
    if (expired(it->second.seen)) {
      it = ls.down_by_marker.erase(it);
      ++ls.expired;
    } else {
      ++it;
    }
  }

  std::vector<AlignedAggregate> fresh;
  (void)consume_aligned_prefix(p.link_aggregates.tail,
                               cfg_.margin_boundaries, fresh);
  p.link_aggregates.checked += fresh.size();
  for (const AlignedAggregate& g : fresh) {
    check_aligned_counts(g, p.link_aggregates.violations);
  }
}

void IncrementalPathVerifier::report_gap(RoundGap gap) {
  gaps_.push_back(std::move(gap));
}

PathAnalysis IncrementalPathVerifier::analyze() const {
  const PathLayout& layout = cfg_.layout;
  PathAnalysis analysis;
  analysis.gaps = gaps_;

  for (const Pair& p : pairs_) {
    const net::HopId a = layout.hops[p.up_pos];
    const net::HopId b = layout.hops[p.down_pos];
    const bool have_both = rounds_ingested(a) > 0 && rounds_ingested(b) > 0;

    if (p.is_domain) {
      DomainFinding f;
      f.domain = layout.domain_of[p.up_pos];
      f.ingress = a;
      f.egress = b;
      if (have_both) {
        // Matches recorded out of feed order (a buffered egress sample
        // resolved by a late ingress round) carry their egress stream
        // position — sorting restores egress observation order, the
        // order the batch matcher reports.
        std::vector<std::pair<std::uint64_t, double>> ordered =
            p.delay.delays;
        std::sort(ordered.begin(), ordered.end());
        f.delay.sample_delays_ms.reserve(ordered.size());
        for (const auto& [order, ms] : ordered) {
          f.delay.sample_delays_ms.push_back(ms);
        }
        f.delay.common_samples = p.delay.delays.size();
        if (f.delay.common_samples > 0) {
          stats::QuantileEstimator estimator;
          estimator.add_all(f.delay.sample_delays_ms);
          f.delay.quantiles =
              estimator.estimate_many(stats::kDelayQuantiles, 0.95);
        }

        const AlignmentResult tail = align_tail(p.loss.tail);
        f.loss.details.reserve(p.loss.groups.size() + tail.aligned.size());
        f.loss.details = p.loss.groups;
        f.loss.details.insert(f.loss.details.end(), tail.aligned.begin(),
                              tail.aligned.end());
        f.loss.joined_aggregates = f.loss.details.size();
        f.loss.patchup_migrations =
            p.loss.consumed_migrations + tail.migrations;
        double total_s = 0.0;
        for (const AlignedAggregate& g : f.loss.details) {
          f.loss.offered += g.up_count;
          f.loss.delivered += g.down_count;
          const double s = g.duration_s();
          total_s += s;
          if (s > f.loss.max_granularity_s) f.loss.max_granularity_s = s;
        }
        if (!f.loss.details.empty()) {
          f.loss.mean_granularity_s =
              total_s / static_cast<double>(f.loss.details.size());
        }
      }
      analysis.domains.push_back(std::move(f));
      continue;
    }

    LinkFinding f;
    f.upstream_domain = layout.domain_of[p.up_pos];
    f.downstream_domain = layout.domain_of[p.down_pos];
    f.upstream_hop = a;
    f.downstream_hop = b;
    if (have_both) {
      const auto up_it = hop_info_.find(a);
      const auto down_it = hop_info_.find(b);
      const HopInfo& up_info = up_it->second;
      const HopInfo& down_info = down_it->second;

      LinkSampleCheck samples;
      // Batch order: the Eq.-1 MaxDiff verdict first, then per-round
      // output in upstream stream order (the finalized rounds, then the
      // still-pending ones resolved against everything seen so far).
      if (up_info.max_diff != down_info.max_diff) {
        samples.violations.push_back(Inconsistency{
            InconsistencyKind::kMaxDiffMismatch, 0,
            (up_info.max_diff - down_info.max_diff).milliseconds()});
      }
      const LinkSamplesState& ls = p.link_samples;
      samples.rounds_matched = ls.accumulated.rounds_matched;
      samples.common_samples = ls.accumulated.common_samples;
      samples.link_delays_ms = ls.accumulated.link_delays_ms;
      samples.violations.insert(samples.violations.end(),
                                ls.accumulated.violations.begin(),
                                ls.accumulated.violations.end());
      // Match-once semantics without copying the pending rounds: a
      // consumed-marker set stands in for the settle-time erase.
      std::unordered_set<net::PacketDigest> consumed;
      for (const LinkSamplesState::Stamped& pending : ls.pending_up) {
        const auto match = ls.down_by_marker.find(pending.round.marker_id);
        if (match == ls.down_by_marker.end() ||
            consumed.contains(pending.round.marker_id)) {
          samples.violations.push_back(Inconsistency{
              InconsistencyKind::kMarkerMissing, pending.round.marker_id,
              0.0});
          continue;
        }
        check_sample_round_pair(pending.round, match->second.round,
                                up_info.max_diff, up_info.sample_threshold,
                                down_info.sample_threshold, samples);
        consumed.insert(pending.round.marker_id);
      }
      f.report.samples = std::move(samples);

      LinkAggregateCheck aggregates;
      const AlignmentResult tail = align_tail(p.link_aggregates.tail);
      aggregates.aggregates_checked =
          p.link_aggregates.checked + tail.aligned.size();
      aggregates.violations = p.link_aggregates.violations;
      for (const AlignedAggregate& g : tail.aligned) {
        check_aligned_counts(g, aggregates.violations);
      }
      f.report.aggregates = std::move(aggregates);
    }
    analysis.links.push_back(std::move(f));
  }
  return analysis;
}

IncrementalPathVerifier::ResidentStats
IncrementalPathVerifier::resident_stats() const {
  ResidentStats out;
  for (const Pair& p : pairs_) {
    if (p.is_domain) {
      out.pending_ingress_samples += p.delay.ingress_times.size();
      out.pending_egress_samples += p.delay.pending_egress.size();
      out.retained_delays += p.delay.delays.size();
      out.tail_aggregate_receipts += p.loss.tail.receipt_count();
      out.retained_aligned_groups += p.loss.groups.size();
      out.expired_unmatched += p.delay.expired;
    } else {
      out.pending_sample_rounds += p.link_samples.pending_up.size() +
                                   p.link_samples.down_by_marker.size();
      out.tail_aggregate_receipts += p.link_aggregates.tail.receipt_count();
      out.expired_unmatched += p.link_samples.expired;
    }
  }
  return out;
}

}  // namespace vpm::core
