#include "core/aggregator.hpp"

#include <algorithm>

namespace vpm::core {

void Aggregator::finalize_due(net::Timestamp now) {
  // A pending aggregate's AggTrans is complete once we are J past its
  // boundary: no packet observed from now on can fall inside the window.
  auto still_pending = [&](const Pending& p) {
    return p.boundary + j_window_ >= now;
  };
  auto it = std::stable_partition(pending_.begin(), pending_.end(),
                                  still_pending);
  for (auto done = it; done != pending_.end(); ++done) {
    closed_.push_back(std::move(done->data));
  }
  pending_.erase(it, pending_.end());
}

void Aggregator::observe(const net::Packet& p, net::Timestamp when) {
  ++observed_;
  const net::PacketDigest id = engine_.packet_id(p);
  const bool is_cut =
      open_.has_value() && engine_.cut_value(p) > cut_threshold_;

  finalize_due(when);

  if (is_cut) {
    // Algorithm 2, lines 2-5: close the current receipt; p starts the next
    // aggregate.  The closed receipt's AggTrans.before is everything
    // observed within J before the cut.
    ++cuts_;
    if (j_window_ > net::Duration{0}) {
      Pending pend;
      pend.boundary = when;
      pend.data.agg = open_->agg;
      pend.data.packet_count = open_->count;
      pend.data.opened_at = open_->opened_at;
      pend.data.closed_at = open_->last_at;
      pend.data.trans.before.reserve(recent_.size());
      for (const Recent& r : recent_) {
        if (r.time + j_window_ >= when) {
          pend.data.trans.before.push_back(r.id);
        }
      }
      pending_.push_back(std::move(pend));
    } else {
      // Basic §6.2 mode: no reorder window, close immediately.
      closed_.push_back(AggregateData{.agg = open_->agg,
                                      .packet_count = open_->count,
                                      .trans = {},
                                      .opened_at = open_->opened_at,
                                      .closed_at = open_->last_at});
    }
    open_.reset();
  }

  // The packet lands in every still-open AggTrans window (including, when
  // it is a cut, the window of the boundary it just created).
  for (Pending& pend : pending_) {
    pend.data.trans.after.push_back(id);
  }

  if (!open_) {
    open_ = Open{.agg = AggId{.first = id, .last = id},
                 .count = 1,
                 .opened_at = when,
                 .last_at = when};
  } else {
    // Algorithm 2, lines 5-6 run for every packet: LastPacketID <- p.
    open_->agg.last = id;
    ++open_->count;
    open_->last_at = when;
  }

  if (j_window_ > net::Duration{0}) {
    recent_.push_back(Recent{id, when});
    while (!recent_.empty() && recent_.front().time + j_window_ < when) {
      recent_.pop_front();
    }
    window_peak_ = std::max(window_peak_, recent_.size());
  }
}

std::vector<AggregateData> Aggregator::take_closed() {
  std::vector<AggregateData> out;
  out.swap(closed_);
  return out;
}

std::optional<AggregateData> Aggregator::flush_open() {
  for (Pending& pend : pending_) {
    closed_.push_back(std::move(pend.data));
  }
  pending_.clear();
  if (!open_) return std::nullopt;
  AggregateData d;
  d.agg = open_->agg;
  d.packet_count = open_->count;
  d.opened_at = open_->opened_at;
  d.closed_at = open_->last_at;
  open_.reset();
  return d;
}

}  // namespace vpm::core
