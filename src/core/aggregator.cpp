#include "core/aggregator.hpp"

#include <algorithm>

namespace vpm::core {

Aggregator::Aggregator(const net::DigestEngine& engine,
                       std::uint32_t cut_threshold, net::Duration j_window)
    : engine_(engine), cut_threshold_(cut_threshold), j_window_(j_window) {
  if (j_window_ > net::Duration{0}) {
    ring_.resize(64);  // power of two; grows by doubling as the J window fills
  }
  pending_.reserve(4);
  closed_.reserve(8);
}

void Aggregator::ring_grow() {
  // Double and linearize: entries move to [0, size) of the new backing.
  std::vector<Recent> bigger(ring_.size() * 2);
  const std::size_t mask = ring_.size() - 1;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    bigger[i] = ring_[(ring_head_ + i) & mask];
  }
  ring_.swap(bigger);
  ring_head_ = 0;
}

void Aggregator::ring_push(const Recent& r) {
  if (ring_size_ == ring_.size()) ring_grow();
  ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] = r;
  ++ring_size_;
}

void Aggregator::finalize_due(net::Timestamp now) {
  // A pending aggregate's AggTrans is complete once we are J past its
  // boundary: no packet observed from now on can fall inside the window.
  auto still_pending = [&](const Pending& p) {
    return p.boundary + j_window_ >= now;
  };
  auto it = std::stable_partition(pending_.begin(), pending_.end(),
                                  still_pending);
  for (auto done = it; done != pending_.end(); ++done) {
    closed_.push_back(std::move(done->data));
  }
  pending_.erase(it, pending_.end());
}

void Aggregator::observe(const net::PacketDecisions& d, net::Timestamp when) {
  ++observed_;
  const net::PacketDigest id = d.id;
  const bool is_cut = open_.has_value() && d.cut_value > cut_threshold_;

  if (!pending_.empty()) finalize_due(when);

  if (is_cut) {
    // Algorithm 2, lines 2-5: close the current receipt; p starts the next
    // aggregate.  The closed receipt's AggTrans.before is everything
    // observed within J before the cut.
    ++cuts_;
    if (j_window_ > net::Duration{0}) {
      Pending pend;
      pend.boundary = when;
      pend.data.agg = open_->agg;
      pend.data.packet_count = open_->count;
      pend.data.opened_at = open_->opened_at;
      pend.data.closed_at = open_->last_at;
      pend.data.trans.before.reserve(ring_size_);
      const std::size_t mask = ring_.size() - 1;
      for (std::size_t i = 0; i < ring_size_; ++i) {
        const Recent& r = ring_[(ring_head_ + i) & mask];
        if (r.time + j_window_ >= when) {
          pend.data.trans.before.push_back(r.id);
        }
      }
      // The trailing window is roughly symmetric to the leading one.
      pend.data.trans.after.reserve(pend.data.trans.before.size() + 1);
      pending_.push_back(std::move(pend));
    } else {
      // Basic §6.2 mode: no reorder window, close immediately.
      closed_.push_back(AggregateData{.agg = open_->agg,
                                      .packet_count = open_->count,
                                      .trans = {},
                                      .opened_at = open_->opened_at,
                                      .closed_at = open_->last_at});
    }
    open_.reset();
  }

  // The packet lands in every still-open AggTrans window (including, when
  // it is a cut, the window of the boundary it just created).
  for (Pending& pend : pending_) {
    pend.data.trans.after.push_back(id);
  }

  if (!open_) {
    open_ = Open{.agg = AggId{.first = id, .last = id},
                 .count = 1,
                 .opened_at = when,
                 .last_at = when};
  } else {
    // Algorithm 2, lines 5-6 run for every packet: LastPacketID <- p.
    open_->agg.last = id;
    ++open_->count;
    open_->last_at = when;
  }

  if (j_window_ > net::Duration{0}) {
    ring_push(Recent{id, when});
    const std::size_t mask = ring_.size() - 1;
    while (ring_size_ != 0 &&
           ring_[ring_head_ & mask].time + j_window_ < when) {
      ring_head_ = (ring_head_ + 1) & mask;
      --ring_size_;
    }
    window_peak_ = std::max(window_peak_, ring_size_);
  }
}

std::vector<AggregateData> Aggregator::take_closed() {
  std::vector<AggregateData> out;
  out.swap(closed_);
  closed_.reserve(8);  // the drained vector took the old capacity along
  return out;
}

std::optional<AggregateData> Aggregator::flush_open() {
  for (Pending& pend : pending_) {
    closed_.push_back(std::move(pend.data));
  }
  pending_.clear();
  if (!open_) return std::nullopt;
  AggregateData d;
  d.agg = open_->agg;
  d.packet_count = open_->count;
  d.opened_at = open_->opened_at;
  d.closed_at = open_->last_at;
  open_.reset();
  return d;
}

}  // namespace vpm::core
