// Receipt consistency checking (Section 4, "Receipt Consistency") over an
// inter-domain link: the verifiability machinery.
//
// For sample receipts from the two HOPs facing each other across a link
// (e.g. HOPs 5 and 6 of Fig. 1):
//   Eq. 1: both receipts must declare the same MaxDiff;
//   Eq. 2: for each commonly sampled packet, Time_down - Time_up must not
//          exceed MaxDiff.
// Beyond the paper's two equations, the disclosed thresholds make
// *omissions* checkable: every marker the upstream HOP delivered must
// appear downstream (§5.3), and any packet q with
// SampleFcn(q, marker) > sigma_downstream must too.  A violation means
// either a faulty link or a lie — exactly the paper's dichotomy; the
// verifier discards the receipts and notifies both neighbours, exposing a
// liar to the domain it implicated (§3.1).
//
// For aggregate receipts, counts must agree on every joined aggregate
// after patch-up: a correct link neither loses nor invents packets.
#ifndef VPM_CORE_CONSISTENCY_HPP
#define VPM_CORE_CONSISTENCY_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "core/receipt.hpp"

namespace vpm::core {

enum class InconsistencyKind : std::uint8_t {
  kMaxDiffMismatch,    ///< Eq. 1 violated
  kDelayBound,         ///< Eq. 2 violated
  kMissingDownstream,  ///< upstream-delivered sample absent downstream
  kMissingUpstream,    ///< downstream sample upstream should have reported
  kMarkerMissing,      ///< an upstream marker absent downstream (§5.3)
  kCountMismatch,      ///< joined-aggregate counts differ
  kNegativeLoss,       ///< downstream counted more packets than upstream
};

[[nodiscard]] std::string to_string(InconsistencyKind k);

struct Inconsistency {
  InconsistencyKind kind;
  net::PacketDigest pkt_id = 0;  ///< offending packet (0 for aggregates)
  double magnitude = 0.0;        ///< ms over bound, or packet-count delta
};

struct LinkSampleCheck {
  std::size_t rounds_matched = 0;
  std::size_t common_samples = 0;
  std::vector<Inconsistency> violations;
  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty();
  }
  /// Cross-link residence times (ms) of commonly sampled packets — used
  /// to monitor the link itself.
  std::vector<double> link_delays_ms;
};

/// Check two sample receipts across one inter-domain link.  `up` is the
/// delivering HOP's receipt, `down` the receiving HOP's.
[[nodiscard]] LinkSampleCheck check_link_samples(const SampleReceipt& up,
                                                 const SampleReceipt& down);

struct LinkAggregateCheck {
  std::size_t aggregates_checked = 0;
  std::vector<Inconsistency> violations;
  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty();
  }
};

/// Check aggregate receipts across one link: after alignment/patch-up,
/// every joined aggregate's counts must be equal (a correct link loses
/// nothing).
[[nodiscard]] LinkAggregateCheck check_link_aggregates(
    std::span<const AggregateReceipt> up,
    std::span<const AggregateReceipt> down);

}  // namespace vpm::core

#endif  // VPM_CORE_CONSISTENCY_HPP
