// Receipt consistency checking (Section 4, "Receipt Consistency") over an
// inter-domain link: the verifiability machinery.
//
// For sample receipts from the two HOPs facing each other across a link
// (e.g. HOPs 5 and 6 of Fig. 1):
//   Eq. 1: both receipts must declare the same MaxDiff;
//   Eq. 2: for each commonly sampled packet, Time_down - Time_up must not
//          exceed MaxDiff.
// Beyond the paper's two equations, the disclosed thresholds make
// *omissions* checkable: every marker the upstream HOP delivered must
// appear downstream (§5.3), and any packet q with
// SampleFcn(q, marker) > sigma_downstream must too.  A violation means
// either a faulty link or a lie — exactly the paper's dichotomy; the
// verifier discards the receipts and notifies both neighbours, exposing a
// liar to the domain it implicated (§3.1).
//
// For aggregate receipts, counts must agree on every joined aggregate
// after patch-up: a correct link neither loses nor invents packets.
#ifndef VPM_CORE_CONSISTENCY_HPP
#define VPM_CORE_CONSISTENCY_HPP

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/alignment.hpp"
#include "core/function_ref.hpp"
#include "core/receipt.hpp"
#include "net/time.hpp"

namespace vpm::core {

enum class InconsistencyKind : std::uint8_t {
  kMaxDiffMismatch,    ///< Eq. 1 violated
  kDelayBound,         ///< Eq. 2 violated
  kMissingDownstream,  ///< upstream-delivered sample absent downstream
  kMissingUpstream,    ///< downstream sample upstream should have reported
  kMarkerMissing,      ///< an upstream marker absent downstream (§5.3)
  kCountMismatch,      ///< joined-aggregate counts differ
  kNegativeLoss,       ///< downstream counted more packets than upstream
};

[[nodiscard]] std::string to_string(InconsistencyKind k);

struct Inconsistency {
  InconsistencyKind kind;
  net::PacketDigest pkt_id = 0;  ///< offending packet (0 for aggregates)
  double magnitude = 0.0;        ///< ms over bound, or packet-count delta

  friend bool operator==(const Inconsistency&,
                         const Inconsistency&) = default;
};

struct LinkSampleCheck {
  std::size_t rounds_matched = 0;
  std::size_t common_samples = 0;
  std::vector<Inconsistency> violations;
  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty();
  }
  /// Cross-link residence times (ms) of commonly sampled packets — used
  /// to monitor the link itself.
  std::vector<double> link_delays_ms;

  friend bool operator==(const LinkSampleCheck&,
                         const LinkSampleCheck&) = default;
};

/// Check two sample receipts across one inter-domain link.  `up` is the
/// delivering HOP's receipt, `down` the receiving HOP's.
[[nodiscard]] LinkSampleCheck check_link_samples(const SampleReceipt& up,
                                                 const SampleReceipt& down);

struct LinkAggregateCheck {
  std::size_t aggregates_checked = 0;
  std::vector<Inconsistency> violations;
  [[nodiscard]] bool consistent() const noexcept {
    return violations.empty();
  }
  friend bool operator==(const LinkAggregateCheck&,
                         const LinkAggregateCheck&) = default;
};

/// Check aggregate receipts across one link: after alignment/patch-up,
/// every joined aggregate's counts must be equal (a correct link loses
/// nothing).
[[nodiscard]] LinkAggregateCheck check_link_aggregates(
    std::span<const AggregateReceipt> up,
    std::span<const AggregateReceipt> down);

// --- Round-fed consistency (incremental verifier support) -----------------
//
// check_link_samples works round by round: markers delimit sampling rounds
// and matching rounds pair by marker id.  The pieces below are its loop
// body and splitter, exposed so a round-fed verifier can run the SAME
// checks incrementally — pairing rounds as they arrive and retiring them —
// instead of materializing both HOPs' full sample streams.

/// One marker-delimited sampling round (markers are always sampled, §5.3).
struct SampleRound {
  net::PacketDigest marker_id = 0;
  net::Timestamp marker_time;
  /// Non-marker records of the round, keyed by packet id.
  std::unordered_map<net::PacketDigest, net::Timestamp> records;
};

/// Splits a sample stream into rounds across multiple feeds: records
/// accumulate into the open round until a marker completes it.  A round
/// straddling two reporting drains reassembles exactly as it would in the
/// concatenated receipt.  Records after the last marker stay pending
/// (their pairing fate is undecided) — for honest receipts Algorithm 1
/// never emits trailing records, so a finished stream leaves nothing.
class SampleRoundSplitter {
 public:
  /// Feed the next slice of the stream; completed rounds are handed to
  /// `on_round` in stream order.
  void feed(std::span<const SampleRecord> records,
            FunctionRef<void(SampleRound&&)> on_round);

  [[nodiscard]] const SampleRound& pending() const noexcept {
    return current_;
  }

 private:
  SampleRound current_;
};

/// Check one matched (up, down) round pair — the loop body of
/// check_link_samples.  `max_diff` is the upstream HOP's disclosed bound
/// (Eq. 1 made them agree); the sigmas are the two HOPs' disclosed sample
/// thresholds for the omission checks (§5.2/§5.3).  Accumulates matches,
/// link delays and violations into `out` (rounds_matched included).
void check_sample_round_pair(const SampleRound& up, const SampleRound& down,
                             net::Duration max_diff,
                             std::uint32_t up_sample_threshold,
                             std::uint32_t down_sample_threshold,
                             LinkSampleCheck& out);

/// The per-joined-aggregate count rule of check_link_aggregates: appends
/// the violation for one aligned aggregate, if any.
void check_aligned_counts(const AlignedAggregate& a,
                          std::vector<Inconsistency>& out);

}  // namespace vpm::core

#endif  // VPM_CORE_CONSISTENCY_HPP
