// A lightweight non-owning callable reference: one data pointer plus one
// function pointer, no allocation, no type-erasure vtable.
//
// std::function on a hot path (ReceiptStore::for_each_payload sits on the
// wire-import path, invoked once per stored chunk) pays for ownership the
// caller never needs: the visitor always outlives the call.  FunctionRef
// is the classic borrowed alternative (the shape of C++26's
// std::function_ref): callers pass any callable by reference; the callee
// must not store it beyond the call.
#ifndef VPM_CORE_FUNCTION_REF_HPP
#define VPM_CORE_FUNCTION_REF_HPP

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace vpm::core {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...).  Non-owning: the
  /// referenced callable must outlive every call through this reference
  /// (passing a lambda directly at the call site is always safe).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(obj),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace vpm::core

#endif  // VPM_CORE_FUNCTION_REF_HPP
