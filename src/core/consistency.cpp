#include "core/consistency.hpp"

#include <unordered_map>

#include "net/digest.hpp"

namespace vpm::core {

std::string to_string(InconsistencyKind k) {
  switch (k) {
    case InconsistencyKind::kMaxDiffMismatch:
      return "MaxDiff mismatch (Eq. 1)";
    case InconsistencyKind::kDelayBound:
      return "timestamp difference exceeds MaxDiff (Eq. 2)";
    case InconsistencyKind::kMissingDownstream:
      return "sample delivered upstream but missing downstream";
    case InconsistencyKind::kMissingUpstream:
      return "downstream sample missing from upstream receipt";
    case InconsistencyKind::kMarkerMissing:
      return "marker missing downstream";
    case InconsistencyKind::kCountMismatch:
      return "aggregate count mismatch across link";
    case InconsistencyKind::kNegativeLoss:
      return "downstream counted more packets than upstream";
  }
  return "unknown";
}

void SampleRoundSplitter::feed(std::span<const SampleRecord> records,
                               FunctionRef<void(SampleRound&&)> on_round) {
  for (const SampleRecord& s : records) {
    if (s.is_marker) {
      current_.marker_id = s.pkt_id;
      current_.marker_time = s.time;
      on_round(std::move(current_));
      current_ = SampleRound{};
    } else {
      current_.records.emplace(s.pkt_id, s.time);
    }
  }
}

void check_sample_round_pair(const SampleRound& ur, const SampleRound& dr,
                             net::Duration max_diff,
                             std::uint32_t up_sample_threshold,
                             std::uint32_t down_sample_threshold,
                             LinkSampleCheck& out) {
  ++out.rounds_matched;

  const auto check_pair = [&](net::PacketDigest id, net::Timestamp t_up,
                              net::Timestamp t_down) {
    ++out.common_samples;
    const net::Duration diff = t_down - t_up;
    out.link_delays_ms.push_back(diff.milliseconds());
    if (diff > max_diff) {
      out.violations.push_back(Inconsistency{InconsistencyKind::kDelayBound,
                                             id,
                                             (diff - max_diff).milliseconds()});
    }
  };

  check_pair(ur.marker_id, ur.marker_time, dr.marker_time);

  for (const auto& [id, t_up] : ur.records) {
    const auto dit = dr.records.find(id);
    if (dit != dr.records.end()) {
      check_pair(id, t_up, dit->second);
      continue;
    }
    // Should the downstream HOP have sampled it?  Its disclosed sigma
    // tells us (subset property, §5.2).
    if (net::DigestEngine::sample_value(id, ur.marker_id) >
        down_sample_threshold) {
      out.violations.push_back(Inconsistency{
          InconsistencyKind::kMissingDownstream, id, 0.0});
    }
  }
  for (const auto& [id, t_down] : dr.records) {
    if (ur.records.contains(id)) continue;
    if (net::DigestEngine::sample_value(id, dr.marker_id) >
        up_sample_threshold) {
      // The upstream HOP should have sampled this packet yet claims it
      // never saw it — packets cannot materialise on a link.
      out.violations.push_back(
          Inconsistency{InconsistencyKind::kMissingUpstream, id, 0.0});
    }
  }
}

namespace {

std::vector<SampleRound> split_rounds(const SampleReceipt& r) {
  std::vector<SampleRound> rounds;
  SampleRoundSplitter splitter;
  splitter.feed(r.samples,
                [&](SampleRound&& round) { rounds.push_back(std::move(round)); });
  // Records after the last marker have undecided fate upstream/downstream
  // pairing-wise; Algorithm 1 never emits them, so the splitter's pending
  // round is empty for honest receipts and silently dropped for tampered
  // ones.
  return rounds;
}

}  // namespace

LinkSampleCheck check_link_samples(const SampleReceipt& up,
                                   const SampleReceipt& down) {
  LinkSampleCheck out;

  if (up.path.max_diff != down.path.max_diff) {
    out.violations.push_back(
        Inconsistency{InconsistencyKind::kMaxDiffMismatch, 0,
                      (up.path.max_diff - down.path.max_diff).milliseconds()});
  }
  const net::Duration max_diff = up.path.max_diff;

  const std::vector<SampleRound> up_rounds = split_rounds(up);
  const std::vector<SampleRound> down_rounds = split_rounds(down);
  std::unordered_map<net::PacketDigest, std::size_t> down_by_marker;
  down_by_marker.reserve(down_rounds.size() * 2);
  for (std::size_t i = 0; i < down_rounds.size(); ++i) {
    down_by_marker.emplace(down_rounds[i].marker_id, i);
  }

  for (const SampleRound& ur : up_rounds) {
    const auto it = down_by_marker.find(ur.marker_id);
    if (it == down_by_marker.end()) {
      // Section 5.3: markers are always sampled and reported, so a marker
      // the upstream HOP claims to have delivered but the downstream HOP
      // never reported is a loss on the link or a lie.
      out.violations.push_back(
          Inconsistency{InconsistencyKind::kMarkerMissing, ur.marker_id, 0.0});
      continue;
    }
    check_sample_round_pair(ur, down_rounds[it->second], max_diff,
                            up.sample_threshold, down.sample_threshold, out);
  }
  return out;
}

void check_aligned_counts(const AlignedAggregate& a,
                          std::vector<Inconsistency>& out) {
  const std::int64_t delta = a.lost();
  if (delta > 0) {
    out.push_back(Inconsistency{InconsistencyKind::kCountMismatch,
                                a.boundary_id, static_cast<double>(delta)});
  } else if (delta < 0) {
    out.push_back(Inconsistency{InconsistencyKind::kNegativeLoss,
                                a.boundary_id, static_cast<double>(-delta)});
  }
}

LinkAggregateCheck check_link_aggregates(
    std::span<const AggregateReceipt> up,
    std::span<const AggregateReceipt> down) {
  LinkAggregateCheck out;
  const AlignmentResult aligned = align_aggregates(up, down, true);
  out.aggregates_checked = aligned.aligned.size();
  for (const AlignedAggregate& a : aligned.aligned) {
    check_aligned_counts(a, out.violations);
  }
  return out;
}

}  // namespace vpm::core
