#include "core/receipt.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpm::core {
namespace {

constexpr std::uint8_t kSampleTag = 0x01;
constexpr std::uint8_t kAggregateTag = 0x02;

/// Sample record times are carried as microsecond offsets from the receipt
/// epoch; bit 31 flags a marker.
constexpr std::uint32_t kMarkerBit = 0x80000000u;

void require_same_path(const net::PathId& a, const net::PathId& b,
                       const char* what) {
  if (!(a == b)) {
    throw std::invalid_argument(std::string{"combining "} + what +
                                " from different paths");
  }
}

}  // namespace

SampleReceipt combine_samples(std::span<const SampleReceipt> receipts) {
  if (receipts.empty()) {
    throw std::invalid_argument("combine_samples: empty input");
  }
  SampleReceipt out;
  out.path = receipts.front().path;
  out.sample_threshold = receipts.front().sample_threshold;
  out.marker_threshold = receipts.front().marker_threshold;
  std::size_t total = 0;
  for (const SampleReceipt& r : receipts) {
    require_same_path(out.path, r.path, "sample receipts");
    if (r.sample_threshold != out.sample_threshold ||
        r.marker_threshold != out.marker_threshold) {
      throw std::invalid_argument(
          "combining sample receipts with different thresholds");
    }
    total += r.samples.size();
  }
  out.samples.reserve(total);
  for (const SampleReceipt& r : receipts) {
    out.samples.insert(out.samples.end(), r.samples.begin(), r.samples.end());
  }
  // Union in time order (Section 4: combination is the union of Samples).
  std::stable_sort(out.samples.begin(), out.samples.end(),
                   [](const SampleRecord& a, const SampleRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

AggregateReceipt combine_aggregates(
    std::span<const AggregateReceipt> receipts) {
  if (receipts.empty()) {
    throw std::invalid_argument("combine_aggregates: empty input");
  }
  AggregateReceipt out;
  out.path = receipts.front().path;
  out.agg.first = receipts.front().agg.first;
  out.agg.last = receipts.back().agg.last;
  out.opened_at = receipts.front().opened_at;
  out.closed_at = receipts.back().closed_at;
  out.trans = receipts.back().trans;
  std::uint64_t count = 0;
  for (const AggregateReceipt& r : receipts) {
    require_same_path(out.path, r.path, "aggregate receipts");
    count += r.packet_count;
  }
  if (count > 0xFFFFFFFFull) {
    throw std::invalid_argument("combined aggregate count overflows 32 bits");
  }
  out.packet_count = static_cast<std::uint32_t>(count);
  return out;
}

void encode(const SampleReceipt& r, net::ByteWriter& out) {
  out.u8(kSampleTag);
  out.u64(r.path.path_key());
  out.u32(r.sample_threshold);
  out.u32(r.marker_threshold);
  const net::Timestamp epoch =
      r.samples.empty() ? net::Timestamp{} : r.samples.front().time;
  out.i64(epoch.nanoseconds());
  out.u32(static_cast<std::uint32_t>(r.samples.size()));
  for (const SampleRecord& s : r.samples) {
    out.u32(s.pkt_id);
    const std::int64_t off_us = (s.time - epoch).nanoseconds() / 1000;
    if (off_us < 0 || off_us >= static_cast<std::int64_t>(kMarkerBit)) {
      throw std::invalid_argument(
          "sample time offset outside the receipt's 35-minute span; flush "
          "receipts more often");
    }
    std::uint32_t field = static_cast<std::uint32_t>(off_us);
    if (s.is_marker) field |= kMarkerBit;
    out.u32(field);
  }
}

SampleReceipt decode_sample_receipt(net::ByteReader& in,
                                    const net::PathId& path) {
  if (in.u8() != kSampleTag) {
    throw net::WireError("expected sample receipt tag");
  }
  const std::uint64_t key = in.u64();
  if (key != path.path_key()) {
    throw net::WireError("sample receipt path key mismatch");
  }
  SampleReceipt r;
  r.path = path;
  r.sample_threshold = in.u32();
  r.marker_threshold = in.u32();
  const net::Timestamp epoch{in.i64()};
  const std::uint32_t count = in.u32();
  // Each record is 8 bytes; reject absurd counts before allocating.
  in.expect_at_least(static_cast<std::size_t>(count) * 8);
  r.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SampleRecord s;
    s.pkt_id = in.u32();
    const std::uint32_t field = in.u32();
    s.is_marker = (field & kMarkerBit) != 0;
    s.time = epoch + net::microseconds(field & ~kMarkerBit);
    r.samples.push_back(s);
  }
  return r;
}

void encode(const AggregateReceipt& r, net::ByteWriter& out) {
  out.u8(kAggregateTag);
  out.u64(r.path.path_key());
  out.u32(r.agg.first);
  out.u32(r.agg.last);
  out.u32(r.packet_count);
  out.i64(r.opened_at.nanoseconds());
  out.i64(r.closed_at.nanoseconds());
  out.u16(static_cast<std::uint16_t>(r.trans.before.size()));
  out.u16(static_cast<std::uint16_t>(r.trans.after.size()));
  for (const net::PacketDigest id : r.trans.before) out.u32(id);
  for (const net::PacketDigest id : r.trans.after) out.u32(id);
}

AggregateReceipt decode_aggregate_receipt(net::ByteReader& in,
                                          const net::PathId& path) {
  if (in.u8() != kAggregateTag) {
    throw net::WireError("expected aggregate receipt tag");
  }
  const std::uint64_t key = in.u64();
  if (key != path.path_key()) {
    throw net::WireError("aggregate receipt path key mismatch");
  }
  AggregateReceipt r;
  r.path = path;
  r.agg.first = in.u32();
  r.agg.last = in.u32();
  r.packet_count = in.u32();
  r.opened_at = net::Timestamp{in.i64()};
  r.closed_at = net::Timestamp{in.i64()};
  const std::uint16_t n_before = in.u16();
  const std::uint16_t n_after = in.u16();
  in.expect_at_least((static_cast<std::size_t>(n_before) + n_after) * 4);
  r.trans.before.reserve(n_before);
  for (std::uint16_t i = 0; i < n_before; ++i) r.trans.before.push_back(in.u32());
  r.trans.after.reserve(n_after);
  for (std::uint16_t i = 0; i < n_after; ++i) r.trans.after.push_back(in.u32());
  return r;
}

std::size_t wire_size(const SampleReceipt& r) {
  net::ByteWriter w;
  encode(r, w);
  return w.size();
}

std::size_t wire_size(const AggregateReceipt& r) {
  net::ByteWriter w;
  encode(r, w);
  return w.size();
}

}  // namespace vpm::core
