// Streaming receipt-egress API: the consumer side of a control-plane
// drain.
//
// The paper's processor module ships receipts to other domains as
// authenticated wire batches (§2.3, §7.1); materializing a 100k-path drain
// as std::vector<PathDrain> first would cost hundreds of MB the hardware
// does not have.  A ReceiptSink is the push-based counterpart of
// core::StreamingDrainMerge: every drain producer (MonitoringCache,
// ShardedCollector, pipeline elements) streams receipts into a sink one
// path at a time, so a consumer that encodes-and-forgets (the wire
// exporter) runs in constant memory regardless of path count.
//
// Contract, per drained path, in ascending global-path-index order:
//
//   begin_path(index, id)        exactly once
//   on_samples(receipt)          exactly once, before any aggregate
//   on_aggregate(receipt)        zero or more times, in drain order
//   end_path()                   exactly once
//
// The receipts arrive by value: the producer has already detached them
// from its internal state (drains are destructive), so the sink may move
// them without copying.  The legacy vector-returning drains are thin
// adapters over VectorSink — byte-identical streams, pinned by the
// existing equivalence suites.
#ifndef VPM_CORE_RECEIPT_SINK_HPP
#define VPM_CORE_RECEIPT_SINK_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "core/receipt.hpp"
#include "core/receipt_merge.hpp"
#include "net/path_id.hpp"

namespace vpm::core {

class ReceiptSink {
 public:
  virtual ~ReceiptSink() = default;

  /// Start of one path's drain.  `path_index` is the producer's global
  /// path index (collector drains emit ascending indices; a pipeline with
  /// several collector elements restarts the index space per element).
  /// `id` is the PathId stamped on the path's receipts.
  virtual void begin_path(std::size_t path_index, const net::PathId& id) = 0;
  /// The path's sample receipt — exactly one per path, possibly with an
  /// empty record list (an idle path still discloses its thresholds).
  virtual void on_samples(SampleReceipt samples) = 0;
  /// One closed aggregate receipt, in drain (opened_at) order.
  virtual void on_aggregate(AggregateReceipt aggregate) = 0;
  /// End of the path's drain.
  virtual void end_path() = 0;
};

/// Replay one materialized path drain into a sink (the adapter between
/// the legacy vector world and the streaming world; also how tests replay
/// recorded drains through production sinks).
void emit_drain(ReceiptSink& sink, std::size_t path_index, PathDrain drain);

/// Replay a merged drain stream into a sink.
void emit_stream(ReceiptSink& sink, std::vector<IndexedPathDrain> stream);

/// Collects a sink-based drain into the materialized legacy form.  The
/// vector drains are implemented as exactly this adapter, so the legacy
/// equivalence suites pin the sink refactor for free.
class VectorSink final : public ReceiptSink {
 public:
  void begin_path(std::size_t path_index, const net::PathId& id) override;
  void on_samples(SampleReceipt samples) override;
  void on_aggregate(AggregateReceipt aggregate) override;
  void end_path() override;

  /// The collected stream, in arrival order.
  [[nodiscard]] const std::vector<IndexedPathDrain>& stream() const noexcept {
    return stream_;
  }
  /// Surrender the stream and reset.  The trailing group may be half
  /// assembled (taken mid-path while the feeder abandons a broken round);
  /// clearing the open flag here is what lets the feeder's next
  /// begin_path start clean instead of tripping the pairing check.
  [[nodiscard]] std::vector<IndexedPathDrain> take() && {
    open_ = false;
    return std::move(stream_);
  }

 private:
  std::vector<IndexedPathDrain> stream_;
  bool open_ = false;
};

/// Invokes a callback with each COMPLETED (path_index, id, drain) group of
/// a sink stream, holding only one path's drain resident — the round-fed
/// verifier's ingest adapter.  WireImporter streams a producer's periodic
/// reporting rounds as repeated begin/.../end groups; routing each group
/// to IncrementalPathVerifier::add_round as it completes keeps import
/// memory constant in both path count and round count.
class DrainRoundSink final : public ReceiptSink {
 public:
  using Consumer =
      std::function<void(std::size_t, const net::PathId&, PathDrain&&)>;

  /// Throws std::invalid_argument on a null consumer.
  explicit DrainRoundSink(Consumer consumer);

  void begin_path(std::size_t path_index, const net::PathId& id) override;
  void on_samples(SampleReceipt samples) override;
  void on_aggregate(AggregateReceipt aggregate) override;
  void end_path() override;

 private:
  Consumer consumer_;
  std::size_t index_ = 0;
  net::PathId id_;
  PathDrain current_;
  bool open_ = false;
};

/// Discards everything (benchmark baselines, contract smoke tests).
class NullSink final : public ReceiptSink {
 public:
  void begin_path(std::size_t, const net::PathId&) override { ++paths_; }
  void on_samples(SampleReceipt samples) override {
    sample_records_ += samples.samples.size();
  }
  void on_aggregate(AggregateReceipt) override { ++aggregates_; }
  void end_path() override {}

  [[nodiscard]] std::size_t paths() const noexcept { return paths_; }
  [[nodiscard]] std::size_t sample_records() const noexcept {
    return sample_records_;
  }
  [[nodiscard]] std::size_t aggregates() const noexcept { return aggregates_; }

 private:
  std::size_t paths_ = 0;
  std::size_t sample_records_ = 0;
  std::size_t aggregates_ = 0;
};

}  // namespace vpm::core

#endif  // VPM_CORE_RECEIPT_SINK_HPP
