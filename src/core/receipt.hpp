// Traffic receipts: the information VPM domains voluntarily disclose.
//
// Section 4 defines two receipt kinds:
//   R = <PathID, Samples>            (delay samples)
//   R = <PathID, AggID, PktCnt>      (packet aggregates)
// extended in Section 6.3 with AggTrans, the per-packet window around each
// cutting point that enables reorder patch-up.
//
// Reproduction extensions, each disclosed and justified here:
//   * SampleRecord.is_marker — with independently-seeded digests
//     (DigestMode::kIndependent) a verifier cannot recompute marker-ness
//     from the PktID, so the reporter flags it.  (With kSingle digests the
//     flag is redundant and checkable.)
//   * SampleReceipt.sample_threshold — the reporter's sigma.  Disclosing it
//     lets a verifier compute which packets the reporter SHOULD have
//     sampled (Section 5.2's subset property), turning "missing sample"
//     into a checkable inconsistency.  A domain's sampling rate is
//     observable from its receipts anyway, so nothing new leaks.
//   * AggregateReceipt.opened_at/closed_at — receipt epoch timestamps, so
//     loss granularity is reportable in seconds (Fig. 3's y-axis) without
//     out-of-band knowledge of path rates.
#ifndef VPM_CORE_RECEIPT_HPP
#define VPM_CORE_RECEIPT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "net/digest.hpp"
#include "net/path_id.hpp"
#include "net/time.hpp"
#include "net/wire.hpp"

namespace vpm::core {

/// One sampled measurement: <PktID, Time> (Section 4).
struct SampleRecord {
  net::PacketDigest pkt_id = 0;
  net::Timestamp time;
  bool is_marker = false;

  friend bool operator==(const SampleRecord&, const SampleRecord&) = default;
};

/// Receipt for a set of sampled packets.
struct SampleReceipt {
  net::PathId path;
  /// The reporter's sigma (see header comment).
  std::uint32_t sample_threshold = 0;
  /// The system-wide mu, echoed for self-containedness.
  std::uint32_t marker_threshold = 0;
  /// In observation order.
  std::vector<SampleRecord> samples;

  friend bool operator==(const SampleReceipt&, const SampleReceipt&) = default;
};

/// Aggregate identifier: digests of the aggregate's first and last packet.
struct AggId {
  net::PacketDigest first = 0;
  net::PacketDigest last = 0;

  friend bool operator==(const AggId&, const AggId&) = default;
};

/// The AggTrans reorder window (Section 6.3): packet ids observed within J
/// of the *boundary* that closed this aggregate, split by side.  `before`
/// are ids the reporter assigned to this aggregate, `after` ids assigned
/// to the next (starting with the cutting packet).  Empty for the final
/// (never-closed) aggregate of a run.
struct TransWindow {
  std::vector<net::PacketDigest> before;
  std::vector<net::PacketDigest> after;

  [[nodiscard]] bool empty() const noexcept {
    return before.empty() && after.empty();
  }
  friend bool operator==(const TransWindow&, const TransWindow&) = default;
};

/// Receipt for one packet aggregate.
struct AggregateReceipt {
  net::PathId path;
  AggId agg;
  std::uint32_t packet_count = 0;
  TransWindow trans;
  net::Timestamp opened_at;  ///< local time of the first packet
  net::Timestamp closed_at;  ///< local time of the last packet

  friend bool operator==(const AggregateReceipt&,
                         const AggregateReceipt&) = default;
};

/// Everything one path's monitor discloses in one control-plane drain: the
/// sample receipt plus the closed aggregates.  This is the unit the
/// processor module ships per reporting period, and the unit the sharded
/// collector's merge step reorders into a global stream.
struct PathDrain {
  SampleReceipt samples;
  std::vector<AggregateReceipt> aggregates;

  friend bool operator==(const PathDrain&, const PathDrain&) = default;
};

// --- Receipt combination (Section 4, "Receipt Combination") -------------

/// Combine sample receipts from one HOP: union of the sample sets, merged
/// in time order.  Throws std::invalid_argument if paths or thresholds
/// differ (receipts from different HOPs/paths must not be combined).
[[nodiscard]] SampleReceipt combine_samples(
    std::span<const SampleReceipt> receipts);

/// Combine N *consecutive* aggregates from one HOP:
/// <PathID, AggID(first of first, last of last), sum of PktCnt>.
/// The result's trans window is the last receipt's (the surviving
/// boundary).  Throws std::invalid_argument on empty input or mixed paths.
[[nodiscard]] AggregateReceipt combine_aggregates(
    std::span<const AggregateReceipt> receipts);

// --- Wire format ----------------------------------------------------------

/// Serialize receipts referencing the path by its compact 64-bit key (a
/// real deployment announces the PathId table separately; re-sending ~25
/// bytes of path context in every receipt would triple receipt size).
void encode(const SampleReceipt& r, net::ByteWriter& out);
void encode(const AggregateReceipt& r, net::ByteWriter& out);

/// Decode; `path` must be supplied from the path table matching the wire
/// path key.  Throws net::WireError on malformed input (wrong tag,
/// truncation, path-key mismatch).
[[nodiscard]] SampleReceipt decode_sample_receipt(net::ByteReader& in,
                                                  const net::PathId& path);
[[nodiscard]] AggregateReceipt decode_aggregate_receipt(
    net::ByteReader& in, const net::PathId& path);

/// Wire sizes, for the overhead accounting (§7.1).
[[nodiscard]] std::size_t wire_size(const SampleReceipt& r);
[[nodiscard]] std::size_t wire_size(const AggregateReceipt& r);

}  // namespace vpm::core

#endif  // VPM_CORE_RECEIPT_HPP
