#include "core/path_state.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "net/sample_batch.hpp"
#include "net/simd_dispatch.hpp"
#include "net/window_batch.hpp"

namespace vpm::core {
namespace {

/// First temp-buffer slice allocated to a path (records).  Deliberately
/// small: a 100k-path cache must not pre-pay per-path arena space for
/// paths that may never see traffic; busy paths double their slice on
/// demand (amortised O(1) per record).
constexpr std::uint32_t kBufInitialCap = 16;
/// First J-ring slice (records, power of two).
constexpr std::uint32_t kRingInitialCap = 8;
/// Emitted-sample capacity floor for path_decay (records) — small enough
/// that a quiet path pins almost nothing, large enough that a typical
/// reporting round (a handful of samples + markers) never reallocates.
constexpr std::size_t kEmittedDecayFloor = 16;

// The batch kernels walk buffered/ring records as raw strided bytes:
// uint32 digest in the first four bytes, int64 nanosecond timestamp at
// byte offset 8 (qword-aligned for the AVX2 time gathers).
static_assert(sizeof(TimedDigest) == 16);
static_assert(alignof(TimedDigest) == 8);
static_assert(std::is_trivially_copyable_v<TimedDigest>);
static_assert(offsetof(TimedDigest, id) == 0);
static_assert(offsetof(TimedDigest, time) == 8);
constexpr std::size_t kTimedDigestTimeOff = 8;

inline const std::byte* bytes_of(const TimedDigest* records) noexcept {
  return reinterpret_cast<const std::byte*>(records);
}

/// True when the AVX2 kernels should run: the dispatch shim's active tier
/// (force hook -> VPM_SIMD -> cpuid) resolved to kAvx2 AND this binary
/// actually carries the kernels.  Checked once per sweep/cut, not per
/// record.
inline bool avx2_kernels_active() noexcept {
  return net::simd::active_tier() == net::simd::Tier::kAvx2;
}

/// Slice offsets and capacities are stored as 32-bit record indices
/// (PathWarm).  An arena past 2^32 records (~69 GB) would silently wrap
/// an offset into another path's live slice, so growth fails loud instead
/// — the ROADMAP compaction follow-on is the real fix for runs that get
/// near this.  Doubling is computed in 64 bits so a 2^31-capacity slice
/// cannot wrap new_cap to 0 and slip past the check.
void check_arena_offset(std::size_t begin, std::uint64_t new_cap,
                        const char* which) {
  if (begin + new_cap > 0xFFFFFFFFull) {
    throw std::length_error(std::string("PathStateSoA: ") + which +
                            " arena exceeds 32-bit slice addressing");
  }
}

/// Relocate a path's temp-buffer slice to the arena tail with doubled
/// capacity.  The old slice becomes garbage; doubling bounds total garbage
/// below total live capacity.
void grow_buffer(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::uint32_t live = slot.hot.buf_size;
  const std::uint64_t new_cap =
      slot.warm.buf_cap == 0
          ? kBufInitialCap
          : static_cast<std::uint64_t>(slot.warm.buf_cap) * 2;
  const std::size_t begin = s.buf_arena.size();
  check_arena_offset(begin, new_cap, "temp-buffer");
  s.buf_arena.resize(begin + new_cap);
  std::copy_n(s.buf_arena.begin() + slot.warm.buf_begin, live,
              s.buf_arena.begin() + static_cast<std::ptrdiff_t>(begin));
  slot.warm.buf_begin = static_cast<std::uint32_t>(begin);
  slot.warm.buf_cap = static_cast<std::uint32_t>(new_cap);
}

/// Relocate a path's J-ring slice to the arena tail with doubled capacity,
/// linearised (entries move to [0, size), head resets to 0) — the SoA
/// version of the pre-refactor Aggregator::ring_grow.
void grow_ring(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::uint64_t new_cap =
      slot.warm.ring_cap == 0
          ? kRingInitialCap
          : static_cast<std::uint64_t>(slot.warm.ring_cap) * 2;
  const std::size_t begin = s.ring_arena.size();
  check_arena_offset(begin, new_cap, "J-ring");
  s.ring_arena.resize(begin + new_cap);
  if (slot.warm.ring_cap != 0) {
    const std::uint32_t mask = slot.warm.ring_cap - 1;
    for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
      s.ring_arena[begin + i] =
          s.ring_arena[slot.warm.ring_begin +
                       ((slot.hot.ring_head + i) & mask)];
    }
  }
  slot.warm.ring_begin = static_cast<std::uint32_t>(begin);
  slot.warm.ring_cap = static_cast<std::uint32_t>(new_cap);
  slot.hot.ring_head = 0;
}

/// Move pending aggregates whose AggTrans window is complete (now is J
/// past their boundary) to the closed list, preserving relative order in
/// both groups (the pre-refactor stable_partition semantics).
///
/// The keep decision (`boundary + J >= now`, computed as
/// `boundary >= now - J` so both tiers share one predicate) runs through
/// the branchless time-mask kernel in blocks; the partition then walks
/// the mask bits.  Moves only ever go from i down to keep <= i, so
/// masking a block before moving within it is safe — sources ahead of the
/// cursor are untouched.
void finalize_due(PathStateSoA& s, std::size_t path, net::Timestamp now) {
  auto& pending = s.pending[path];
  auto& closed = s.closed[path];
  const std::size_t n = pending.size();
  const std::int64_t cutoff =
      now.nanoseconds() - s.params.j_window.nanoseconds();
  static_assert(sizeof(PendingAggregate) % 8 == 0);
  const std::size_t stride = sizeof(PendingAggregate);
  // offsetof on a type with vector members is conditionally supported, so
  // derive the boundary offset from a live object instead.
  const std::byte* base = reinterpret_cast<const std::byte*>(pending.data());
  const std::size_t boundary_off =
      n == 0 ? 0
             : static_cast<std::size_t>(
                   reinterpret_cast<const std::byte*>(&pending[0].boundary) -
                   base);

  static const net::detail::TimeGeMaskFn avx2 =
      net::detail::time_ge_mask_avx2();
  const bool use_avx2 =
      avx2 != nullptr && avx2_kernels_active() && boundary_off % 8 == 0;

  constexpr std::size_t kBlock = 512;  // 8 mask words on the stack
  std::uint64_t mask[kBlock / 64];
  std::size_t keep = 0;
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t bn = std::min(kBlock, n - b);
    if (use_avx2) {
      avx2(base + b * stride, stride, boundary_off, bn, cutoff, mask);
    } else {
      net::detail::time_ge_mask_scalar(base + b * stride, stride,
                                       boundary_off, bn, cutoff, mask);
    }
    for (std::size_t j = 0; j < bn; ++j) {
      const std::size_t i = b + j;
      if ((mask[j >> 6] >> (j & 63)) & 1u) {
        if (keep != i) pending[keep] = std::move(pending[i]);
        ++keep;
      } else {
        closed.push_back(std::move(pending[i].data));
      }
    }
  }
  pending.resize(keep);
  s.slots[path].warm.pend_count = static_cast<std::uint32_t>(keep);
}

}  // namespace

std::size_t path_observe_sampler(PathStateSoA& s, std::size_t path,
                                 const net::PacketDecisions& d,
                                 net::Timestamp when) {
  PathSlot& slot = s.slots[path];

  // Time-keyed marker rule: when enabled, a packet arriving while the
  // OLDEST buffered record (always buf[0] — sweeps empty the buffer, so
  // records sit in arrival order) has aged past marker_max_age acts as a
  // forced marker.  This bounds the per-path temp buffer by time
  // (~rate x max_age records) instead of Algorithm 1's ~1/marker_rate
  // expectation, which a slow path can exceed without bound.
  const bool forced_marker =
      s.params.marker_max_age > net::Duration{0} && slot.hot.buf_size != 0 &&
      when - s.buf_arena[slot.warm.buf_begin].time >= s.params.marker_max_age;

  if (forced_marker || d.marker_value > s.params.marker_threshold) {
    // Algorithm 1, lines 1-6: the marker decides the fate of everything
    // buffered since the previous marker.  The sample_value evaluations
    // run through the sweep-select kernel (8-wide on the AVX2 tier) in
    // chunks; survivors append as one bulk write per chunk instead of
    // per-record push_backs.
    PathStats& st = s.stats[path];
    ++st.markers;
    const std::size_t swept = slot.hot.buf_size;
    st.swept += swept;
    st.buffer_peak = std::max<std::uint64_t>(st.buffer_peak, swept);
    auto& emitted = s.emitted[path];
    if (swept != 0) {
      static const net::detail::SweepSelectFn avx2 =
          net::detail::sweep_select_avx2();
      const bool use_avx2 = avx2 != nullptr && avx2_kernels_active();
      (use_avx2 ? s.sweep_kernels.avx2 : s.sweep_kernels.scalar) += 1;
      const TimedDigest* buf = s.buf_arena.data() + slot.warm.buf_begin;
      constexpr std::size_t kSweepChunk = 512;
      std::uint32_t idx[kSweepChunk];
      for (std::size_t chunk = 0; chunk < swept; chunk += kSweepChunk) {
        const std::size_t cn = std::min(kSweepChunk, swept - chunk);
        const std::size_t m =
            use_avx2 ? avx2(bytes_of(buf + chunk), sizeof(TimedDigest), cn,
                            d.id, s.params.sample_threshold, idx)
                     : net::detail::sweep_select_scalar(
                           bytes_of(buf + chunk), sizeof(TimedDigest), cn,
                           d.id, s.params.sample_threshold, idx);
        const std::size_t old = emitted.size();
        emitted.resize(old + m);
        SampleRecord* dst = emitted.data() + old;
        for (std::size_t j = 0; j < m; ++j) {
          const TimedDigest& r = buf[chunk + idx[j]];
          dst[j] = SampleRecord{
              .pkt_id = r.id, .time = r.time, .is_marker = false};
        }
      }
      slot.hot.buf_size = 0;
    }
    emitted.push_back(
        SampleRecord{.pkt_id = d.id, .time = when, .is_marker = true});
    st.emitted_peak = std::max<std::uint64_t>(st.emitted_peak,
                                              emitted.size());
    return swept;
  }

  // Algorithm 1, line 8: remember the packet until the next marker.
  if (slot.hot.buf_size == slot.warm.buf_cap) grow_buffer(s, path);
  s.buf_arena[slot.warm.buf_begin + slot.hot.buf_size] =
      TimedDigest{d.id, when};
  ++slot.hot.buf_size;
  return 0;
}

void path_observe_aggregator(PathStateSoA& s, std::size_t path,
                             const net::PacketDecisions& d,
                             net::Timestamp when) {
  PathSlot& slot = s.slots[path];
  const bool has_j = s.params.j_window > net::Duration{0};
  const bool is_cut =
      slot.hot.agg_count != 0 && d.cut_value > s.params.cut_threshold;

  if (slot.warm.pend_count != 0) finalize_due(s, path, when);

  if (is_cut) {
    // Algorithm 2, lines 2-5: close the current receipt; p starts the next
    // aggregate.  The closed receipt's AggTrans.before is everything
    // observed within J before the cut.
    ++s.stats[path].cuts;
    if (has_j) {
      PendingAggregate pend;
      pend.boundary = when;
      pend.data.agg =
          AggId{.first = slot.hot.agg_first, .last = slot.hot.agg_last};
      pend.data.packet_count = slot.hot.agg_count;
      pend.data.opened_at = net::Timestamp{slot.warm.opened_at_ns};
      pend.data.closed_at = net::Timestamp{slot.hot.last_at_ns};
      // The J-ring occupies at most two linear segments; run the
      // window-collect kernel (masked 8-wide time compares +
      // compress-store on the AVX2 tier) over each.  The keep predicate
      // is the scalar `r.time + J >= when` rearranged to
      // `r.time >= when - J` so both tiers compare identically.
      const TimedDigest* ring = s.ring_arena.data() + slot.warm.ring_begin;
      const std::uint32_t mask = slot.warm.ring_cap - 1;  // ring_size > 0
      const std::uint32_t head = slot.hot.ring_head & mask;
      const std::uint32_t first =
          std::min(slot.hot.ring_size, slot.warm.ring_cap - head);
      const std::int64_t cutoff =
          when.nanoseconds() - s.params.j_window.nanoseconds();
      static const net::detail::WindowCollectFn avx2 =
          net::detail::window_collect_avx2();
      const net::detail::WindowCollectFn collect =
          (avx2 != nullptr && avx2_kernels_active())
              ? avx2
              : &net::detail::window_collect_scalar;
      auto& before = pend.data.trans.before;
      before.resize(slot.hot.ring_size);
      std::size_t kept = collect(bytes_of(ring + head), sizeof(TimedDigest),
                                 kTimedDigestTimeOff, first, cutoff,
                                 before.data());
      kept += collect(bytes_of(ring), sizeof(TimedDigest),
                      kTimedDigestTimeOff, slot.hot.ring_size - first, cutoff,
                      before.data() + kept);
      before.resize(kept);
      // The trailing window is roughly symmetric to the leading one.
      pend.data.trans.after.reserve(pend.data.trans.before.size() + 1);
      s.pending[path].push_back(std::move(pend));
      ++slot.warm.pend_count;
    } else {
      // Basic §6.2 mode: no reorder window, close immediately.
      s.closed[path].push_back(AggregateData{
          .agg = AggId{.first = slot.hot.agg_first,
                       .last = slot.hot.agg_last},
          .packet_count = slot.hot.agg_count,
          .trans = {},
          .opened_at = net::Timestamp{slot.warm.opened_at_ns},
          .closed_at = net::Timestamp{slot.hot.last_at_ns}});
    }
    slot.hot.agg_count = 0;
  }

  // The packet lands in every still-open AggTrans window (including, when
  // it is a cut, the window of the boundary it just created).
  if (slot.warm.pend_count != 0) {
    for (PendingAggregate& pend : s.pending[path]) {
      pend.data.trans.after.push_back(d.id);
    }
  }

  if (slot.hot.agg_count == 0) {
    slot.hot.agg_first = d.id;
    slot.hot.agg_last = d.id;
    slot.hot.agg_count = 1;
    slot.warm.opened_at_ns = when.nanoseconds();
    slot.hot.last_at_ns = when.nanoseconds();
  } else {
    // Algorithm 2, lines 5-6 run for every packet: LastPacketID <- p.
    // The count saturates rather than wrap: agg_count == 0 encodes "no
    // open aggregate", so a 2^32-packet aggregate (cuts effectively
    // disabled on a hot path) must not wrap into the sentinel and reset
    // the open aggregate's identity.  (The pre-SoA optional<Open> let
    // the reported count wrap instead; saturation keeps AggId/opened_at
    // correct and reports "at least 2^32-1".)
    slot.hot.agg_last = d.id;
    if (slot.hot.agg_count != 0xFFFFFFFFu) ++slot.hot.agg_count;
    slot.hot.last_at_ns = when.nanoseconds();
  }

  if (has_j) {
    if (slot.hot.ring_size == slot.warm.ring_cap) grow_ring(s, path);
    const std::uint32_t mask = slot.warm.ring_cap - 1;
    TimedDigest* ring = s.ring_arena.data() + slot.warm.ring_begin;
    ring[(slot.hot.ring_head + slot.hot.ring_size) & mask] =
        TimedDigest{d.id, when};
    ++slot.hot.ring_size;
    // Evict entries older than J — a sliding window over observations.
    while (slot.hot.ring_size != 0 &&
           ring[slot.hot.ring_head & mask].time + s.params.j_window < when) {
      slot.hot.ring_head = (slot.hot.ring_head + 1) & mask;
      --slot.hot.ring_size;
    }
    if (slot.hot.ring_size > slot.warm.window_peak) {
      slot.warm.window_peak = slot.hot.ring_size;
    }
  }
}

std::vector<SampleRecord> path_take_samples(PathStateSoA& s,
                                            std::size_t path) {
  // Copy-and-clear rather than swap: a busy path re-fills this vector
  // every reporting round, and the old swap-release forced it to re-grow
  // from zero through the allocator each time (malloc + doubling copies
  // inside the data-plane sweep).  The retained capacity is bounded by
  // the path's actual backlog peak (stats.emitted_peak), decays when the
  // path quiets down (path_decay) and is fully released at eviction.
  auto& e = s.emitted[path];
  std::vector<SampleRecord> out(e.begin(), e.end());
  e.clear();
  return out;
}

std::vector<AggregateData> path_take_closed(PathStateSoA& s,
                                            std::size_t path) {
  std::vector<AggregateData> out;
  out.swap(s.closed[path]);
  return out;
}

std::optional<AggregateData> path_flush_open(PathStateSoA& s,
                                             std::size_t path) {
  auto& pending = s.pending[path];
  auto& closed = s.closed[path];
  for (PendingAggregate& pend : pending) {
    closed.push_back(std::move(pend.data));
  }
  pending.clear();
  PathSlot& slot = s.slots[path];
  slot.warm.pend_count = 0;

  if (slot.hot.agg_count == 0) return std::nullopt;
  AggregateData d;
  d.agg = AggId{.first = slot.hot.agg_first, .last = slot.hot.agg_last};
  d.packet_count = slot.hot.agg_count;
  d.opened_at = net::Timestamp{slot.warm.opened_at_ns};
  d.closed_at = net::Timestamp{slot.hot.last_at_ns};
  slot.hot.agg_count = 0;
  return d;
}

std::size_t path_evict(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::size_t dropped = slot.hot.buf_size;
  s.stats[path].dropped_buffered += dropped;
  slot.hot = PathHot{};
  // Preserve the lifetime window_peak (a §7.1 reporting figure); reset the
  // arena addressing so the path owns no slice.
  const std::uint32_t peak = slot.warm.window_peak;
  slot.warm = PathWarm{};
  slot.warm.window_peak = peak;
  // The cold vectors are drained by the caller; swap-release their
  // capacity so an evicted path holds no heap at all.
  std::vector<SampleRecord>{}.swap(s.emitted[path]);
  std::vector<PendingAggregate>{}.swap(s.pending[path]);
  std::vector<AggregateData>{}.swap(s.closed[path]);
  return dropped;
}

std::size_t path_state_compact(PathStateSoA& s) {
  const std::size_t before = s.arena_bytes();

  std::size_t buf_records = 0;
  std::size_t ring_records = 0;
  for (const PathSlot& slot : s.slots) {
    buf_records += slot.warm.buf_cap;
    ring_records += slot.warm.ring_cap;
  }
  std::vector<TimedDigest> buf(buf_records);
  std::vector<TimedDigest> ring(ring_records);

  std::size_t buf_at = 0;
  std::size_t ring_at = 0;
  for (PathSlot& slot : s.slots) {
    if (slot.warm.buf_cap != 0) {
      std::copy_n(s.buf_arena.begin() + slot.warm.buf_begin,
                  slot.hot.buf_size,
                  buf.begin() + static_cast<std::ptrdiff_t>(buf_at));
      slot.warm.buf_begin = static_cast<std::uint32_t>(buf_at);
      buf_at += slot.warm.buf_cap;
    }
    if (slot.warm.ring_cap != 0) {
      // Linearise: entries move to [0, ring_size), head resets — the same
      // transformation grow_ring applies, so this is receipt-invisible.
      const std::uint32_t mask = slot.warm.ring_cap - 1;
      for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
        ring[ring_at + i] =
            s.ring_arena[slot.warm.ring_begin +
                         ((slot.hot.ring_head + i) & mask)];
      }
      slot.warm.ring_begin = static_cast<std::uint32_t>(ring_at);
      slot.hot.ring_head = 0;
      ring_at += slot.warm.ring_cap;
    }
  }
  s.buf_arena = std::move(buf);
  s.ring_arena = std::move(ring);
  return before - s.arena_bytes();
}

PathDecay path_decay(PathStateSoA& s, std::size_t path,
                     std::uint32_t low_streak) {
  PathDecay out;
  if (low_streak == 0) return out;
  PathSlot& slot = s.slots[path];
  PathStats& st = s.stats[path];

  // Temp buffer: live records always occupy the slice front, so halving
  // is pure bookkeeping — the tail half just stops being addressed.
  if (slot.warm.buf_cap > kBufInitialCap &&
      std::uint64_t{slot.hot.buf_size} * 4 < slot.warm.buf_cap) {
    if (++st.buf_low_streak >= low_streak) {
      const std::uint32_t released = slot.warm.buf_cap / 2;
      slot.warm.buf_cap -= released;
      st.buf_low_streak = 0;
      ++out.halved_slices;
      out.released_bytes += released * sizeof(TimedDigest);
    }
  } else {
    st.buf_low_streak = 0;
  }

  // J-ring: occupancy below a quarter means the survivors fit the front
  // half with room to spare.  Linearise them there through a temp copy
  // (a wrapped ring's masked source positions can collide with already-
  // written destinations) — the same entries-to-front transformation
  // grow_ring applies, so this is receipt-invisible.
  if (slot.warm.ring_cap > kRingInitialCap &&
      std::uint64_t{slot.hot.ring_size} * 4 < slot.warm.ring_cap) {
    if (++st.ring_low_streak >= low_streak) {
      const std::uint32_t mask = slot.warm.ring_cap - 1;
      std::vector<TimedDigest> live(slot.hot.ring_size);
      for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
        live[i] = s.ring_arena[slot.warm.ring_begin +
                               ((slot.hot.ring_head + i) & mask)];
      }
      std::copy(live.begin(), live.end(),
                s.ring_arena.begin() + slot.warm.ring_begin);
      const std::uint32_t released = slot.warm.ring_cap / 2;
      slot.warm.ring_cap -= released;
      slot.hot.ring_head = 0;
      st.ring_low_streak = 0;
      ++out.halved_slices;
      out.released_bytes += released * sizeof(TimedDigest);
    }
  } else {
    st.ring_low_streak = 0;
  }

  // Emitted-sample capacity (retained across drains by path_take_samples):
  // same quarter-occupancy/streak rule.  This is ordinary heap, not arena
  // space, so the halving reallocates immediately instead of leaving
  // garbage for compaction — reported in the separate emitted fields.
  auto& emitted = s.emitted[path];
  if (emitted.capacity() > kEmittedDecayFloor &&
      emitted.size() * 4 < emitted.capacity()) {
    if (++st.emitted_low_streak >= low_streak) {
      const std::size_t old_cap = emitted.capacity();
      std::vector<SampleRecord> shrunk;
      shrunk.reserve(std::max(old_cap / 2, kEmittedDecayFloor));
      shrunk.insert(shrunk.end(), emitted.begin(), emitted.end());
      emitted.swap(shrunk);
      st.emitted_low_streak = 0;
      ++out.halved_emitted;
      if (old_cap > emitted.capacity()) {
        out.released_emitted_bytes +=
            (old_cap - emitted.capacity()) * sizeof(SampleRecord);
      }
    }
  } else {
    st.emitted_low_streak = 0;
  }
  return out;
}

SampleReceipt path_collect_samples(PathStateSoA& s, std::size_t path,
                                   const net::PathId& id) {
  SampleReceipt r;
  r.path = id;
  r.sample_threshold = s.params.sample_threshold;
  r.marker_threshold = s.params.marker_threshold;
  r.samples = path_take_samples(s, path);
  return r;
}

std::vector<AggregateReceipt> path_collect_aggregates(PathStateSoA& s,
                                                      std::size_t path,
                                                      const net::PathId& id,
                                                      bool flush_open) {
  auto stamp_one = [&id](const AggregateData& d) {
    return AggregateReceipt{.path = id,
                            .agg = d.agg,
                            .packet_count = d.packet_count,
                            .trans = d.trans,
                            .opened_at = d.opened_at,
                            .closed_at = d.closed_at};
  };
  std::optional<AggregateData> last;
  if (flush_open) last = path_flush_open(s, path);
  const std::vector<AggregateData> closed = path_take_closed(s, path);
  std::vector<AggregateReceipt> out;
  out.reserve(closed.size() + (last.has_value() ? 1 : 0));
  for (const AggregateData& d : closed) out.push_back(stamp_one(d));
  if (last.has_value()) out.push_back(stamp_one(*last));
  return out;
}

}  // namespace vpm::core
