#include "core/path_state.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vpm::core {
namespace {

/// First temp-buffer slice allocated to a path (records).  Deliberately
/// small: a 100k-path cache must not pre-pay per-path arena space for
/// paths that may never see traffic; busy paths double their slice on
/// demand (amortised O(1) per record).
constexpr std::uint32_t kBufInitialCap = 16;
/// First J-ring slice (records, power of two).
constexpr std::uint32_t kRingInitialCap = 8;

/// Slice offsets and capacities are stored as 32-bit record indices
/// (PathWarm).  An arena past 2^32 records (~69 GB) would silently wrap
/// an offset into another path's live slice, so growth fails loud instead
/// — the ROADMAP compaction follow-on is the real fix for runs that get
/// near this.  Doubling is computed in 64 bits so a 2^31-capacity slice
/// cannot wrap new_cap to 0 and slip past the check.
void check_arena_offset(std::size_t begin, std::uint64_t new_cap,
                        const char* which) {
  if (begin + new_cap > 0xFFFFFFFFull) {
    throw std::length_error(std::string("PathStateSoA: ") + which +
                            " arena exceeds 32-bit slice addressing");
  }
}

/// Relocate a path's temp-buffer slice to the arena tail with doubled
/// capacity.  The old slice becomes garbage; doubling bounds total garbage
/// below total live capacity.
void grow_buffer(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::uint32_t live = slot.hot.buf_size;
  const std::uint64_t new_cap =
      slot.warm.buf_cap == 0
          ? kBufInitialCap
          : static_cast<std::uint64_t>(slot.warm.buf_cap) * 2;
  const std::size_t begin = s.buf_arena.size();
  check_arena_offset(begin, new_cap, "temp-buffer");
  s.buf_arena.resize(begin + new_cap);
  std::copy_n(s.buf_arena.begin() + slot.warm.buf_begin, live,
              s.buf_arena.begin() + static_cast<std::ptrdiff_t>(begin));
  slot.warm.buf_begin = static_cast<std::uint32_t>(begin);
  slot.warm.buf_cap = static_cast<std::uint32_t>(new_cap);
}

/// Relocate a path's J-ring slice to the arena tail with doubled capacity,
/// linearised (entries move to [0, size), head resets to 0) — the SoA
/// version of the pre-refactor Aggregator::ring_grow.
void grow_ring(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::uint64_t new_cap =
      slot.warm.ring_cap == 0
          ? kRingInitialCap
          : static_cast<std::uint64_t>(slot.warm.ring_cap) * 2;
  const std::size_t begin = s.ring_arena.size();
  check_arena_offset(begin, new_cap, "J-ring");
  s.ring_arena.resize(begin + new_cap);
  if (slot.warm.ring_cap != 0) {
    const std::uint32_t mask = slot.warm.ring_cap - 1;
    for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
      s.ring_arena[begin + i] =
          s.ring_arena[slot.warm.ring_begin +
                       ((slot.hot.ring_head + i) & mask)];
    }
  }
  slot.warm.ring_begin = static_cast<std::uint32_t>(begin);
  slot.warm.ring_cap = static_cast<std::uint32_t>(new_cap);
  slot.hot.ring_head = 0;
}

/// Move pending aggregates whose AggTrans window is complete (now is J
/// past their boundary) to the closed list, preserving relative order in
/// both groups (the pre-refactor stable_partition semantics).
void finalize_due(PathStateSoA& s, std::size_t path, net::Timestamp now) {
  auto& pending = s.pending[path];
  auto& closed = s.closed[path];
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].boundary + s.params.j_window >= now) {
      if (keep != i) pending[keep] = std::move(pending[i]);
      ++keep;
    } else {
      closed.push_back(std::move(pending[i].data));
    }
  }
  pending.resize(keep);
  s.slots[path].warm.pend_count = static_cast<std::uint32_t>(keep);
}

}  // namespace

std::size_t path_observe_sampler(PathStateSoA& s, std::size_t path,
                                 const net::PacketDecisions& d,
                                 net::Timestamp when) {
  PathSlot& slot = s.slots[path];

  // Time-keyed marker rule: when enabled, a packet arriving while the
  // OLDEST buffered record (always buf[0] — sweeps empty the buffer, so
  // records sit in arrival order) has aged past marker_max_age acts as a
  // forced marker.  This bounds the per-path temp buffer by time
  // (~rate x max_age records) instead of Algorithm 1's ~1/marker_rate
  // expectation, which a slow path can exceed without bound.
  const bool forced_marker =
      s.params.marker_max_age > net::Duration{0} && slot.hot.buf_size != 0 &&
      when - s.buf_arena[slot.warm.buf_begin].time >= s.params.marker_max_age;

  if (forced_marker || d.marker_value > s.params.marker_threshold) {
    // Algorithm 1, lines 1-6: the marker decides the fate of everything
    // buffered since the previous marker.
    PathStats& st = s.stats[path];
    ++st.markers;
    const std::size_t swept = slot.hot.buf_size;
    st.swept += swept;
    st.buffer_peak = std::max<std::uint64_t>(st.buffer_peak, swept);
    const TimedDigest* buf = s.buf_arena.data() + slot.warm.buf_begin;
    auto& emitted = s.emitted[path];
    for (std::size_t i = 0; i < swept; ++i) {
      if (net::DigestEngine::sample_value(buf[i].id, d.id) >
          s.params.sample_threshold) {
        emitted.push_back(SampleRecord{
            .pkt_id = buf[i].id, .time = buf[i].time, .is_marker = false});
      }
    }
    slot.hot.buf_size = 0;
    emitted.push_back(
        SampleRecord{.pkt_id = d.id, .time = when, .is_marker = true});
    return swept;
  }

  // Algorithm 1, line 8: remember the packet until the next marker.
  if (slot.hot.buf_size == slot.warm.buf_cap) grow_buffer(s, path);
  s.buf_arena[slot.warm.buf_begin + slot.hot.buf_size] =
      TimedDigest{d.id, when};
  ++slot.hot.buf_size;
  return 0;
}

void path_observe_aggregator(PathStateSoA& s, std::size_t path,
                             const net::PacketDecisions& d,
                             net::Timestamp when) {
  PathSlot& slot = s.slots[path];
  const bool has_j = s.params.j_window > net::Duration{0};
  const bool is_cut =
      slot.hot.agg_count != 0 && d.cut_value > s.params.cut_threshold;

  if (slot.warm.pend_count != 0) finalize_due(s, path, when);

  if (is_cut) {
    // Algorithm 2, lines 2-5: close the current receipt; p starts the next
    // aggregate.  The closed receipt's AggTrans.before is everything
    // observed within J before the cut.
    ++s.stats[path].cuts;
    if (has_j) {
      PendingAggregate pend;
      pend.boundary = when;
      pend.data.agg =
          AggId{.first = slot.hot.agg_first, .last = slot.hot.agg_last};
      pend.data.packet_count = slot.hot.agg_count;
      pend.data.opened_at = net::Timestamp{slot.warm.opened_at_ns};
      pend.data.closed_at = net::Timestamp{slot.hot.last_at_ns};
      pend.data.trans.before.reserve(slot.hot.ring_size);
      const TimedDigest* ring = s.ring_arena.data() + slot.warm.ring_begin;
      const std::uint32_t mask = slot.warm.ring_cap - 1;  // ring_size > 0
      for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
        const TimedDigest& r = ring[(slot.hot.ring_head + i) & mask];
        if (r.time + s.params.j_window >= when) {
          pend.data.trans.before.push_back(r.id);
        }
      }
      // The trailing window is roughly symmetric to the leading one.
      pend.data.trans.after.reserve(pend.data.trans.before.size() + 1);
      s.pending[path].push_back(std::move(pend));
      ++slot.warm.pend_count;
    } else {
      // Basic §6.2 mode: no reorder window, close immediately.
      s.closed[path].push_back(AggregateData{
          .agg = AggId{.first = slot.hot.agg_first,
                       .last = slot.hot.agg_last},
          .packet_count = slot.hot.agg_count,
          .trans = {},
          .opened_at = net::Timestamp{slot.warm.opened_at_ns},
          .closed_at = net::Timestamp{slot.hot.last_at_ns}});
    }
    slot.hot.agg_count = 0;
  }

  // The packet lands in every still-open AggTrans window (including, when
  // it is a cut, the window of the boundary it just created).
  if (slot.warm.pend_count != 0) {
    for (PendingAggregate& pend : s.pending[path]) {
      pend.data.trans.after.push_back(d.id);
    }
  }

  if (slot.hot.agg_count == 0) {
    slot.hot.agg_first = d.id;
    slot.hot.agg_last = d.id;
    slot.hot.agg_count = 1;
    slot.warm.opened_at_ns = when.nanoseconds();
    slot.hot.last_at_ns = when.nanoseconds();
  } else {
    // Algorithm 2, lines 5-6 run for every packet: LastPacketID <- p.
    // The count saturates rather than wrap: agg_count == 0 encodes "no
    // open aggregate", so a 2^32-packet aggregate (cuts effectively
    // disabled on a hot path) must not wrap into the sentinel and reset
    // the open aggregate's identity.  (The pre-SoA optional<Open> let
    // the reported count wrap instead; saturation keeps AggId/opened_at
    // correct and reports "at least 2^32-1".)
    slot.hot.agg_last = d.id;
    if (slot.hot.agg_count != 0xFFFFFFFFu) ++slot.hot.agg_count;
    slot.hot.last_at_ns = when.nanoseconds();
  }

  if (has_j) {
    if (slot.hot.ring_size == slot.warm.ring_cap) grow_ring(s, path);
    const std::uint32_t mask = slot.warm.ring_cap - 1;
    TimedDigest* ring = s.ring_arena.data() + slot.warm.ring_begin;
    ring[(slot.hot.ring_head + slot.hot.ring_size) & mask] =
        TimedDigest{d.id, when};
    ++slot.hot.ring_size;
    // Evict entries older than J — a sliding window over observations.
    while (slot.hot.ring_size != 0 &&
           ring[slot.hot.ring_head & mask].time + s.params.j_window < when) {
      slot.hot.ring_head = (slot.hot.ring_head + 1) & mask;
      --slot.hot.ring_size;
    }
    if (slot.hot.ring_size > slot.warm.window_peak) {
      slot.warm.window_peak = slot.hot.ring_size;
    }
  }
}

std::vector<SampleRecord> path_take_samples(PathStateSoA& s,
                                            std::size_t path) {
  std::vector<SampleRecord> out;
  out.swap(s.emitted[path]);
  return out;
}

std::vector<AggregateData> path_take_closed(PathStateSoA& s,
                                            std::size_t path) {
  std::vector<AggregateData> out;
  out.swap(s.closed[path]);
  return out;
}

std::optional<AggregateData> path_flush_open(PathStateSoA& s,
                                             std::size_t path) {
  auto& pending = s.pending[path];
  auto& closed = s.closed[path];
  for (PendingAggregate& pend : pending) {
    closed.push_back(std::move(pend.data));
  }
  pending.clear();
  PathSlot& slot = s.slots[path];
  slot.warm.pend_count = 0;

  if (slot.hot.agg_count == 0) return std::nullopt;
  AggregateData d;
  d.agg = AggId{.first = slot.hot.agg_first, .last = slot.hot.agg_last};
  d.packet_count = slot.hot.agg_count;
  d.opened_at = net::Timestamp{slot.warm.opened_at_ns};
  d.closed_at = net::Timestamp{slot.hot.last_at_ns};
  slot.hot.agg_count = 0;
  return d;
}

std::size_t path_evict(PathStateSoA& s, std::size_t path) {
  PathSlot& slot = s.slots[path];
  const std::size_t dropped = slot.hot.buf_size;
  s.stats[path].dropped_buffered += dropped;
  slot.hot = PathHot{};
  // Preserve the lifetime window_peak (a §7.1 reporting figure); reset the
  // arena addressing so the path owns no slice.
  const std::uint32_t peak = slot.warm.window_peak;
  slot.warm = PathWarm{};
  slot.warm.window_peak = peak;
  // The cold vectors are drained by the caller; swap-release their
  // capacity so an evicted path holds no heap at all.
  std::vector<SampleRecord>{}.swap(s.emitted[path]);
  std::vector<PendingAggregate>{}.swap(s.pending[path]);
  std::vector<AggregateData>{}.swap(s.closed[path]);
  return dropped;
}

std::size_t path_state_compact(PathStateSoA& s) {
  const std::size_t before = s.arena_bytes();

  std::size_t buf_records = 0;
  std::size_t ring_records = 0;
  for (const PathSlot& slot : s.slots) {
    buf_records += slot.warm.buf_cap;
    ring_records += slot.warm.ring_cap;
  }
  std::vector<TimedDigest> buf(buf_records);
  std::vector<TimedDigest> ring(ring_records);

  std::size_t buf_at = 0;
  std::size_t ring_at = 0;
  for (PathSlot& slot : s.slots) {
    if (slot.warm.buf_cap != 0) {
      std::copy_n(s.buf_arena.begin() + slot.warm.buf_begin,
                  slot.hot.buf_size,
                  buf.begin() + static_cast<std::ptrdiff_t>(buf_at));
      slot.warm.buf_begin = static_cast<std::uint32_t>(buf_at);
      buf_at += slot.warm.buf_cap;
    }
    if (slot.warm.ring_cap != 0) {
      // Linearise: entries move to [0, ring_size), head resets — the same
      // transformation grow_ring applies, so this is receipt-invisible.
      const std::uint32_t mask = slot.warm.ring_cap - 1;
      for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
        ring[ring_at + i] =
            s.ring_arena[slot.warm.ring_begin +
                         ((slot.hot.ring_head + i) & mask)];
      }
      slot.warm.ring_begin = static_cast<std::uint32_t>(ring_at);
      slot.hot.ring_head = 0;
      ring_at += slot.warm.ring_cap;
    }
  }
  s.buf_arena = std::move(buf);
  s.ring_arena = std::move(ring);
  return before - s.arena_bytes();
}

PathDecay path_decay(PathStateSoA& s, std::size_t path,
                     std::uint32_t low_streak) {
  PathDecay out;
  if (low_streak == 0) return out;
  PathSlot& slot = s.slots[path];
  PathStats& st = s.stats[path];

  // Temp buffer: live records always occupy the slice front, so halving
  // is pure bookkeeping — the tail half just stops being addressed.
  if (slot.warm.buf_cap > kBufInitialCap &&
      std::uint64_t{slot.hot.buf_size} * 4 < slot.warm.buf_cap) {
    if (++st.buf_low_streak >= low_streak) {
      const std::uint32_t released = slot.warm.buf_cap / 2;
      slot.warm.buf_cap -= released;
      st.buf_low_streak = 0;
      ++out.halved_slices;
      out.released_bytes += released * sizeof(TimedDigest);
    }
  } else {
    st.buf_low_streak = 0;
  }

  // J-ring: occupancy below a quarter means the survivors fit the front
  // half with room to spare.  Linearise them there through a temp copy
  // (a wrapped ring's masked source positions can collide with already-
  // written destinations) — the same entries-to-front transformation
  // grow_ring applies, so this is receipt-invisible.
  if (slot.warm.ring_cap > kRingInitialCap &&
      std::uint64_t{slot.hot.ring_size} * 4 < slot.warm.ring_cap) {
    if (++st.ring_low_streak >= low_streak) {
      const std::uint32_t mask = slot.warm.ring_cap - 1;
      std::vector<TimedDigest> live(slot.hot.ring_size);
      for (std::uint32_t i = 0; i < slot.hot.ring_size; ++i) {
        live[i] = s.ring_arena[slot.warm.ring_begin +
                               ((slot.hot.ring_head + i) & mask)];
      }
      std::copy(live.begin(), live.end(),
                s.ring_arena.begin() + slot.warm.ring_begin);
      const std::uint32_t released = slot.warm.ring_cap / 2;
      slot.warm.ring_cap -= released;
      slot.hot.ring_head = 0;
      st.ring_low_streak = 0;
      ++out.halved_slices;
      out.released_bytes += released * sizeof(TimedDigest);
    }
  } else {
    st.ring_low_streak = 0;
  }
  return out;
}

SampleReceipt path_collect_samples(PathStateSoA& s, std::size_t path,
                                   const net::PathId& id) {
  SampleReceipt r;
  r.path = id;
  r.sample_threshold = s.params.sample_threshold;
  r.marker_threshold = s.params.marker_threshold;
  r.samples = path_take_samples(s, path);
  return r;
}

std::vector<AggregateReceipt> path_collect_aggregates(PathStateSoA& s,
                                                      std::size_t path,
                                                      const net::PathId& id,
                                                      bool flush_open) {
  auto stamp_one = [&id](const AggregateData& d) {
    return AggregateReceipt{.path = id,
                            .agg = d.agg,
                            .packet_count = d.packet_count,
                            .trans = d.trans,
                            .opened_at = d.opened_at,
                            .closed_at = d.closed_at};
  };
  std::optional<AggregateData> last;
  if (flush_open) last = path_flush_open(s, path);
  const std::vector<AggregateData> closed = path_take_closed(s, path);
  std::vector<AggregateReceipt> out;
  out.reserve(closed.size() + (last.has_value() ? 1 : 0));
  for (const AggregateData& d : closed) out.push_back(stamp_one(d));
  if (last.has_value()) out.push_back(stamp_one(*last));
  return out;
}

}  // namespace vpm::core
