#include "core/receipt_batch.hpp"

#include <stdexcept>

namespace vpm::core {
namespace {

constexpr std::uint8_t kSampleBatchTag = 0x11;
constexpr std::uint8_t kAggregateBatchTag = 0x12;
constexpr std::int64_t kMaxOffsetUs = 0xFFFFFF;  // 3-byte time span

std::uint32_t offset_us(net::Timestamp t, net::Timestamp epoch,
                        const char* what) {
  const std::int64_t us = (t - epoch).nanoseconds() / 1000;
  if (us < 0 || us > kMaxOffsetUs) {
    throw std::invalid_argument(std::string{what} +
                                " outside the batch's 16.7 s span; flush "
                                "batches more often");
  }
  return static_cast<std::uint32_t>(us);
}

}  // namespace

void encode_sample_batch(const SampleReceipt& r, net::ByteWriter& out) {
  out.u8(kSampleBatchTag);
  out.u64(r.path.path_key());
  out.u32(r.sample_threshold);
  out.u32(r.marker_threshold);
  const net::Timestamp epoch =
      r.samples.empty() ? net::Timestamp{} : r.samples.front().time;
  out.i64(epoch.nanoseconds());

  // Split into rounds, each ending with its marker.
  std::vector<std::pair<std::size_t, std::size_t>> rounds;  // [begin, end)
  std::size_t begin = 0;
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    if (r.samples[i].is_marker) {
      rounds.emplace_back(begin, i + 1);
      begin = i + 1;
    }
  }
  if (begin != r.samples.size()) {
    throw std::invalid_argument(
        "sample batch must end with a marker round (Algorithm 1 only emits "
        "samples when a marker arrives)");
  }
  out.u32(static_cast<std::uint32_t>(rounds.size()));
  for (const auto& [lo, hi] : rounds) {
    const std::size_t followers = hi - lo - 1;
    if (followers > 0xFFFF) {
      throw std::invalid_argument("sampling round too large for batch");
    }
    out.u16(static_cast<std::uint16_t>(followers));
    for (std::size_t i = lo; i < hi; ++i) {
      const SampleRecord& s = r.samples[i];
      if (s.is_marker != (i == hi - 1)) {
        throw std::invalid_argument(
            "marker must be exactly the last record of its round");
      }
      out.u32(s.pkt_id);
      out.u24(offset_us(s.time, epoch, "sample time"));
    }
  }
}

SampleReceipt decode_sample_batch(net::ByteReader& in,
                                  const net::PathId& path) {
  if (in.u8() != kSampleBatchTag) {
    throw net::WireError("expected sample batch tag");
  }
  if (in.u64() != path.path_key()) {
    throw net::WireError("sample batch path key mismatch");
  }
  SampleReceipt r;
  r.path = path;
  r.sample_threshold = in.u32();
  r.marker_threshold = in.u32();
  const net::Timestamp epoch{in.i64()};
  const std::uint32_t round_count = in.u32();
  for (std::uint32_t round = 0; round < round_count; ++round) {
    const std::uint16_t followers = in.u16();
    in.expect_at_least((static_cast<std::size_t>(followers) + 1) * 7);
    for (std::uint32_t i = 0; i <= followers; ++i) {
      SampleRecord s;
      s.pkt_id = in.u32();
      s.time = epoch + net::microseconds(in.u24());
      s.is_marker = (i == followers);
      // Receipts cross trust boundaries: a reporter's emitted stream is in
      // observation order, so reject time inversions here instead of
      // letting them corrupt downstream merges/joins.
      if (!r.samples.empty() && s.time < r.samples.back().time) {
        throw net::WireError("sample batch times not in observation order");
      }
      r.samples.push_back(s);
    }
  }
  return r;
}

void encode_aggregate_batch(std::span<const AggregateReceipt> rs,
                            net::ByteWriter& out) {
  if (rs.empty()) {
    throw std::invalid_argument("empty aggregate batch");
  }
  out.u8(kAggregateBatchTag);
  out.u64(rs.front().path.path_key());
  const net::Timestamp epoch = rs.front().opened_at;
  out.i64(epoch.nanoseconds());
  out.u32(static_cast<std::uint32_t>(rs.size()));
  for (const AggregateReceipt& r : rs) {
    if (!(r.path == rs.front().path)) {
      throw std::invalid_argument("aggregate batch mixes paths");
    }
    if (r.trans.before.size() > 0xFFFF || r.trans.after.size() > 0xFFFF) {
      throw std::invalid_argument("AggTrans window too large for batch");
    }
    out.u32(r.agg.first);
    out.u32(r.agg.last);
    out.u32(r.packet_count);
    out.u24(offset_us(r.opened_at, epoch, "aggregate open time"));
    out.u24(offset_us(r.closed_at, epoch, "aggregate close time"));
    out.u16(static_cast<std::uint16_t>(r.trans.before.size()));
    out.u16(static_cast<std::uint16_t>(r.trans.after.size()));
    for (const net::PacketDigest id : r.trans.before) out.u32(id);
    for (const net::PacketDigest id : r.trans.after) out.u32(id);
  }
}

std::vector<AggregateReceipt> decode_aggregate_batch(net::ByteReader& in,
                                                     const net::PathId& path) {
  if (in.u8() != kAggregateBatchTag) {
    throw net::WireError("expected aggregate batch tag");
  }
  if (in.u64() != path.path_key()) {
    throw net::WireError("aggregate batch path key mismatch");
  }
  const net::Timestamp epoch{in.i64()};
  const std::uint32_t count = in.u32();
  std::vector<AggregateReceipt> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    AggregateReceipt r;
    r.path = path;
    r.agg.first = in.u32();
    r.agg.last = in.u32();
    r.packet_count = in.u32();
    r.opened_at = epoch + net::microseconds(in.u24());
    r.closed_at = epoch + net::microseconds(in.u24());
    // Consecutive aggregates from one HOP open in order and close no
    // earlier than they open; hostile inversions would corrupt the
    // dissemination merge and the verifier's aggregate join.
    if (r.closed_at < r.opened_at) {
      throw net::WireError("aggregate batch closes before it opens");
    }
    if (!out.empty() && r.opened_at < out.back().opened_at) {
      throw net::WireError("aggregate batch receipts not in open order");
    }
    const std::uint16_t n_before = in.u16();
    const std::uint16_t n_after = in.u16();
    in.expect_at_least((static_cast<std::size_t>(n_before) + n_after) * 4);
    r.trans.before.reserve(n_before);
    for (std::uint16_t k = 0; k < n_before; ++k) {
      r.trans.before.push_back(in.u32());
    }
    r.trans.after.reserve(n_after);
    for (std::uint16_t k = 0; k < n_after; ++k) {
      r.trans.after.push_back(in.u32());
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::size_t sample_batch_size(const SampleReceipt& r) {
  net::ByteWriter w;
  encode_sample_batch(r, w);
  return w.size();
}

std::size_t aggregate_batch_size(std::span<const AggregateReceipt> rs) {
  net::ByteWriter w;
  encode_aggregate_batch(rs, w);
  return w.size();
}

}  // namespace vpm::core
