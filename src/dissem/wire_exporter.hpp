// The processor module's receipt egress: a core::ReceiptSink that encodes
// every drained path as receipt_batch wire batches and seals them into
// sequenced, authenticated envelopes (§2.3 dissemination, §7.1 bandwidth
// arithmetic).
//
// Streaming posture: the exporter buffers at most ONE chunk (max_chunk_bytes
// of encoded sections) plus one path's pending aggregate batch, so a
// 100k-path drain exports in memory bounded by the chunk size — constant in
// the path count.  Chunks roll on two triggers:
//
//   * size — appending a section that would push the chunk payload past
//     max_chunk_bytes seals the current chunk first (a single section
//     larger than the cap still ships, as an oversized chunk, and is
//     counted in stats().oversized_sections);
//   * epoch — receipt_batch times are 3-byte microsecond offsets from a
//     per-batch epoch (~16.7 s of span).  Sample receipts are split at
//     sampling-round boundaries and aggregate runs at receipt boundaries
//     whenever the next record would not fit its batch's epoch range, so
//     arbitrarily long drains encode without widening the paper's record
//     format.  (A single round or aggregate spanning more than the epoch
//     range cannot be represented at all; encode_sample_batch /
//     encode_aggregate_batch throw std::invalid_argument, which the
//     exporter propagates — the processor must drain at least once per
//     epoch range, the paper's 1 s reporting period being far inside it.)
//
// Chunk payload layout (one Envelope payload per chunk):
//
//   u8  0x31 chunk tag
//   u32 section count
//   per section:
//     u8  kind            0x32 sample batch | 0x33 aggregate batch
//     u64 path key        (the batch's path, repeated so the importer can
//                          resolve the PathId table entry BEFORE decoding)
//     u32 batch length    (bytes of the receipt_batch encoding following)
//     <receipt_batch encoding, exactly batch-length bytes>
//
// Every path contributes its sample batch section(s) first (always at
// least one, even when empty — an idle path's thresholds still ship),
// then its aggregate batch section(s); a path's sections are contiguous
// in the stream but may straddle a chunk boundary.
#ifndef VPM_DISSEM_WIRE_EXPORTER_HPP
#define VPM_DISSEM_WIRE_EXPORTER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/receipt_sink.hpp"
#include "dissem/envelope.hpp"
#include "net/wire.hpp"

namespace vpm::dissem {

/// Wire framing constants shared with WireImporter (and the hostile-input
/// suite).
inline constexpr std::uint8_t kChunkTag = 0x31;
inline constexpr std::uint8_t kSampleSectionKind = 0x32;
inline constexpr std::uint8_t kAggregateSectionKind = 0x33;
/// Round delimiter: an empty section (key 0, length 0) marking the end of
/// one reporting round, so the importer can recognise the next drain's
/// paths as a NEW round even when the first path key repeats immediately
/// (single-path producers; sample-only rounds, which are otherwise
/// indistinguishable from an epoch split of one round).
inline constexpr std::uint8_t kRoundMarkKind = 0x34;
/// Chunk header (tag + section count) and per-section header
/// (kind + path key + batch length) bytes.
inline constexpr std::size_t kChunkHeaderBytes = 1 + 4;
inline constexpr std::size_t kSectionHeaderBytes = 1 + 8 + 4;
/// Envelope framing around a chunk payload (tag + producer + sequence +
/// length + MAC), for the B/packet accounting.
inline constexpr std::size_t kEnvelopeOverheadBytes = 1 + 4 + 8 + 4 + 8;

class WireExporter final : public core::ReceiptSink {
 public:
  struct Config {
    DomainId producer = 0;
    DomainKey key = 0;
    /// Target chunk payload bound (header + sections).  Bounds the
    /// exporter's resident buffer; also the dissemination unit a consumer
    /// fetches.
    std::size_t max_chunk_bytes = 64 * 1024;
    /// Sequence number of the first sealed envelope (strictly increasing
    /// from there; resuming a producer continues from its last sequence).
    std::uint64_t first_sequence = 1;
  };

  using EnvelopeConsumer = std::function<void(Envelope&&)>;

  /// `consumer` receives each sealed envelope as its chunk closes (e.g.
  /// `[&store](Envelope&& e) { store.ingest(std::move(e)); }`).  Throws
  /// std::invalid_argument on a null consumer or zero chunk size.
  WireExporter(Config cfg, EnvelopeConsumer consumer);

  // ReceiptSink: feed with MonitoringCache::drain_all(sink) /
  // ShardedCollector::drain(sink) / Pipeline::report(sink).
  void begin_path(std::size_t path_index, const net::PathId& id) override;
  void on_samples(core::SampleReceipt samples) override;
  void on_aggregate(core::AggregateReceipt aggregate) override;
  void end_path() override;

  /// Delimit a reporting round: appends a round-mark section after the
  /// current drain's sections.  Call between consecutive drains streamed
  /// through one exporter.  Idempotent until more receipts arrive; a
  /// no-op before anything was exported.  Without a mark the importer
  /// still detects a new round when a path key repeats at a sample
  /// section (any multi-path drain, or a single-path round that shipped
  /// aggregates) — the mark is REQUIRED only for single-path sample-only
  /// rounds, which are otherwise indistinguishable from an epoch split.
  void end_round();

  /// Seal and emit the current partial chunk NOW, without ending the
  /// stream.  Periodic producers call end_round() + flush() after each
  /// drain so the round ships as soon as it closes instead of waiting for
  /// the size cap — the store's cursor consumers then see whole rounds
  /// per fetch.  No-op when nothing is buffered; throws std::logic_error
  /// inside a path or after finish().
  void flush();

  /// Seal and emit the final partial chunk (after a closing round mark).
  /// Call once after the last drain; idempotent.  (Not run from the
  /// destructor: sealing invokes the consumer, which must not happen
  /// implicitly during unwinding.)  Periodic reporting: either stream
  /// several consecutive drains through one exporter with end_round()
  /// between them and finish() once, or use one exporter per period with
  /// first_sequence = the previous exporter's next_sequence().
  void finish();

  struct Stats {
    std::uint64_t paths = 0;
    std::uint64_t sample_records = 0;
    std::uint64_t aggregate_receipts = 0;
    std::uint64_t sample_batches = 0;     ///< sample sections written
    std::uint64_t aggregate_batches = 0;  ///< aggregate sections written
    std::uint64_t epoch_splits = 0;  ///< extra batches forced by epoch span
    std::uint64_t chunks = 0;        ///< envelopes sealed
    std::uint64_t payload_bytes = 0;   ///< chunk payload bytes shipped
    std::uint64_t envelope_bytes = 0;  ///< payloads + envelope framing
    std::uint64_t oversized_sections = 0;
    /// High-water mark of the exporter's resident chunk buffer — the
    /// constant-memory claim, measured.
    std::size_t peak_buffer_bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// The sequence number the next sealed envelope will carry.
  [[nodiscard]] std::uint64_t next_sequence() const noexcept {
    return sequence_;
  }

 private:
  void append_section(std::uint8_t kind, std::uint64_t path_key,
                      const net::ByteWriter& batch);
  void seal_chunk();
  void flush_pending_aggregates();

  Config cfg_;
  EnvelopeConsumer consumer_;
  std::uint64_t sequence_;

  net::ByteWriter sections_;  ///< current chunk's encoded sections
  std::uint32_t section_count_ = 0;

  /// Aggregates of the current path awaiting their epoch-bounded batch.
  std::vector<core::AggregateReceipt> pending_aggregates_;
  bool in_path_ = false;
  bool finished_ = false;
  /// True while the last emitted section is a round mark (or nothing was
  /// emitted yet): end_round() is then a no-op.
  bool at_round_boundary_ = true;

  Stats stats_;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_WIRE_EXPORTER_HPP
