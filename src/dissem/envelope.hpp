// Authenticated receipt dissemination — realising Assumption #2.
//
// "We assume that there exists a way for a domain in path P to disseminate
// receipts to all other domains in P, such that the authenticity and
// integrity of each received receipt is guaranteed.  One way ... an
// administrative web-site accessible over HTTPS" (§2.3).
//
// This module is that layer, laptop-scale: receipts travel inside
// envelopes carrying the producing domain's id, a monotonically increasing
// sequence number (replay protection), and a keyed authenticator over the
// payload.  The MAC is a seeded double Bob-hash — a stand-in with the
// right *interface* (shared-key authenticity + integrity), standing in for
// TLS exactly as DESIGN.md §2 documents; it is NOT cryptographically
// strong and must not be used outside this reproduction.
#ifndef VPM_DISSEM_ENVELOPE_HPP
#define VPM_DISSEM_ENVELOPE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire.hpp"

namespace vpm::dissem {

using DomainKey = std::uint64_t;
using DomainId = std::uint32_t;

/// Keyed authenticator over a byte payload (64-bit tag).
[[nodiscard]] std::uint64_t authenticate(DomainKey key,
                                         std::span<const std::byte> payload);

struct Envelope {
  DomainId producer = 0;
  std::uint64_t sequence = 0;  ///< strictly increasing per producer
  std::vector<std::byte> payload;
  std::uint64_t mac = 0;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Build a sealed envelope (computes the MAC).
[[nodiscard]] Envelope seal(DomainId producer, std::uint64_t sequence,
                            std::vector<std::byte> payload, DomainKey key);

/// True iff the MAC matches the payload under `key`.
[[nodiscard]] bool verify(const Envelope& e, DomainKey key);

void encode(const Envelope& e, net::ByteWriter& out);
/// Throws net::WireError on malformed input (bad tag, truncation,
/// absurd payload length).
[[nodiscard]] Envelope decode_envelope(net::ByteReader& in);

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_ENVELOPE_HPP
