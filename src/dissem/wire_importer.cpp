#include "dissem/wire_importer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/receipt_batch.hpp"
#include "dissem/wire_exporter.hpp"
#include "net/wire.hpp"

namespace vpm::dissem {

WireImporter::WireImporter(std::vector<net::PathId> paths)
    : paths_(std::move(paths)) {
  index_of_.reserve(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (!index_of_.emplace(paths_[i].path_key(), i).second) {
      throw std::invalid_argument("WireImporter: duplicate path key");
    }
  }
}

WireImporter::Session::Session(const WireImporter& importer,
                               core::ReceiptSink& sink)
    : importer_(&importer),
      sink_(&sink),
      seen_(importer.paths_.size(), false) {}

void WireImporter::Session::emit_samples() {
  if (cur_.samples_emitted) return;
  sink_->begin_path(cur_.index, importer_->paths_[cur_.index]);
  sink_->on_samples(std::move(cur_.samples));
  cur_.samples_emitted = true;
}

void WireImporter::Session::close_path() {
  if (!cur_.active) return;
  // A path that shipped only sample sections still yields its full
  // begin/samples/end triple.
  emit_samples();
  sink_->end_path();
  cur_ = Assembly{};
}

void WireImporter::Session::finish() {
  if (finished_) return;
  if (poisoned_) {
    // The assembly is half mutated by a decode error: closing it would
    // hand the sink a fabricated partial round.
    throw std::logic_error(
        "WireImporter::Session: finish after a decode error poisoned the "
        "session");
  }
  close_path();
  finished_ = true;
}

void WireImporter::Session::resync() {
  if (finished_) {
    throw std::logic_error("WireImporter::Session: resync after finish");
  }
  if (cur_.active) note_skipped(cur_.key);
  cur_ = Assembly{};
  poisoned_ = false;
  skipping_ = true;
}

std::vector<std::uint64_t> WireImporter::Session::take_skipped_keys() {
  std::vector<std::uint64_t> out;
  out.swap(skipped_keys_);
  return out;
}

void WireImporter::Session::note_skipped(std::uint64_t key) {
  if (std::find(skipped_keys_.begin(), skipped_keys_.end(), key) ==
      skipped_keys_.end()) {
    skipped_keys_.push_back(key);
  }
}

void WireImporter::Session::prescan(std::span<const std::byte> payload) {
  net::ByteReader in(payload);
  (void)in.u8();  // chunk tag: value checked in the decode pass
  const std::uint32_t sections = in.u32();
  for (std::uint32_t s = 0; s < sections; ++s) {
    (void)in.u8();
    (void)in.u64();
    in.skip(in.u32());
  }
  // Trailing bytes are NOT a truncation: the decode pass rejects them as
  // fatal.  Prescan only proves every declared byte is present.
}

void WireImporter::Session::feed(std::span<const std::byte> payload) {
  if (finished_) {
    throw std::logic_error("WireImporter::Session: feed after finish");
  }
  if (poisoned_) {
    throw std::logic_error(
        "WireImporter::Session: feed after a decode error poisoned the "
        "session (resync() to recover at the next round mark)");
  }
  // Transient tier: prove the payload byte-complete before touching any
  // state.  A truncated fetch fails HERE with a transient WireError and
  // the session stays exactly as it was — retry with the full payload.
  prescan(payload);
  // Fatal tier: the payload is complete, so any decode error below is a
  // content error retrying cannot fix.  Poison-until-proven-good: a
  // WireError can fire mid-chunk with the assembly half mutated and
  // sections already emitted; a caller that catches it must resync().
  poisoned_ = true;
  try {
    decode_chunk(payload);
  } catch (const net::WireError& e) {
    throw net::WireError(e.what(), net::WireError::Severity::kFatal);
  }
  poisoned_ = false;
}

void WireImporter::Session::decode_chunk(std::span<const std::byte> payload) {
  net::ByteReader in(payload);
  if (in.u8() != kChunkTag) {
    throw net::WireError("expected receipt chunk tag");
  }
  const std::uint32_t sections = in.u32();
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint8_t kind = in.u8();
    if (kind != kSampleSectionKind && kind != kAggregateSectionKind &&
        kind != kRoundMarkKind) {
      throw net::WireError("unknown chunk section kind");
    }
    const std::uint64_t key = in.u64();
    const std::uint32_t length = in.u32();
    in.expect_at_least(length);

    if (kind == kRoundMarkKind) {
      if (key != 0 || length != 0) {
        throw net::WireError("malformed round-mark section");
      }
      close_path();
      seen_.assign(seen_.size(), false);
      skipping_ = false;  // resync target found: rounds realign here
      continue;
    }

    if (skipping_) {
      // Resync walk: sections are self-framing, so skip content without
      // decoding it — but record whose receipts are being discarded.
      note_skipped(key);
      in.skip(length);
      continue;
    }

    // A path's sections are contiguous within a round; a sample section
    // for the CURRENT path after its aggregates started can only be the
    // producer's next round (single-path periodic reporting without an
    // explicit round mark).
    if (!cur_.active || key != cur_.key ||
        (kind == kSampleSectionKind && cur_.samples_emitted)) {
      close_path();
      const auto it = importer_->index_of_.find(key);
      if (it == importer_->index_of_.end()) {
        throw net::WireError("chunk references unknown path key");
      }
      if (kind != kSampleSectionKind) {
        throw net::WireError(
            "path section stream must start with its sample batch");
      }
      if (seen_[it->second]) {
        // A fresh sample section for an already-imported path is the
        // producer's next reporting round (periodic drains through one
        // sequence of envelopes): every path starts over.  Within a
        // round a path's sections stay contiguous — an aggregate
        // section for a non-current path is rejected above.
        seen_.assign(seen_.size(), false);
      }
      seen_[it->second] = true;
      cur_.active = true;
      cur_.index = it->second;
      cur_.key = key;
    }
    const net::PathId& id = importer_->paths_[cur_.index];

    const std::size_t before = in.remaining();
    if (kind == kSampleSectionKind) {
      if (cur_.samples_emitted) {
        throw net::WireError(
            "sample batch after the path's aggregate sections");
      }
      core::SampleReceipt part = core::decode_sample_batch(in, id);
      if (!cur_.have_samples) {
        cur_.samples = std::move(part);
        cur_.have_samples = true;
      } else {
        if (part.sample_threshold != cur_.samples.sample_threshold ||
            part.marker_threshold != cur_.samples.marker_threshold) {
          throw net::WireError(
              "split sample batches disagree on thresholds");
        }
        // The decoder validates time order within one batch; the seam
        // between split batches must stay monotone too, or the
        // reassembled stream smuggles in exactly the inversion the
        // per-batch check rejects.
        if (!part.samples.empty() && !cur_.samples.samples.empty() &&
            part.samples.front().time < cur_.samples.samples.back().time) {
          throw net::WireError("split sample batches not in time order");
        }
        cur_.samples.samples.insert(
            cur_.samples.samples.end(),
            std::make_move_iterator(part.samples.begin()),
            std::make_move_iterator(part.samples.end()));
      }
    } else {
      emit_samples();
      std::vector<core::AggregateReceipt> batch =
          core::decode_aggregate_batch(in, id);
      if (!batch.empty()) {
        // Same seam rule across split aggregate batches: open times
        // must not step backwards between sections.
        if (cur_.have_aggregates &&
            batch.front().opened_at < cur_.last_agg_open) {
          throw net::WireError(
              "split aggregate batches not in open order");
        }
        cur_.have_aggregates = true;
        cur_.last_agg_open = batch.back().opened_at;
        for (core::AggregateReceipt& r : batch) {
          sink_->on_aggregate(std::move(r));
        }
      }
    }
    if (before - in.remaining() != length) {
      throw net::WireError("section length does not match its batch");
    }
  }
  if (!in.done()) {
    throw net::WireError("trailing bytes after the chunk's sections");
  }
}

void WireImporter::import_into(const ReceiptStore& store, DomainId producer,
                               core::ReceiptSink& sink) const {
  Session session(*this, sink);
  store.for_each_payload(producer, [&](std::span<const std::byte> payload) {
    session.feed(payload);
  });
  session.finish();
}

std::vector<core::IndexedPathDrain> WireImporter::import(
    const ReceiptStore& store, DomainId producer) const {
  core::VectorSink sink;
  import_into(store, producer, sink);
  return std::move(sink).take();
}

core::HopReceipts WireImporter::import_hop(const ReceiptStore& store,
                                           DomainId producer,
                                           net::HopId hop) const {
  std::vector<core::IndexedPathDrain> stream = import(store, producer);
  if (stream.empty()) {
    throw std::invalid_argument(
        "WireImporter::import_hop: producer shipped no receipts");
  }
  // Periodic reporting yields one drain per round; they concatenate to
  // the one-shot drain (the collector's documented drain-order
  // invariant), which is what the verifier consumes.
  core::HopReceipts out{
      .hop = hop,
      .samples = std::move(stream.front().drain.samples),
      .aggregates = std::move(stream.front().drain.aggregates)};
  for (std::size_t i = 1; i < stream.size(); ++i) {
    core::IndexedPathDrain& d = stream[i];
    if (d.path != stream.front().path) {
      throw std::invalid_argument(
          "WireImporter::import_hop expects a single-path producer");
    }
    out.samples.samples.insert(
        out.samples.samples.end(),
        std::make_move_iterator(d.drain.samples.samples.begin()),
        std::make_move_iterator(d.drain.samples.samples.end()));
    out.aggregates.insert(
        out.aggregates.end(),
        std::make_move_iterator(d.drain.aggregates.begin()),
        std::make_move_iterator(d.drain.aggregates.end()));
  }
  return out;
}

}  // namespace vpm::dissem
