#include "dissem/faulty_transport.hpp"

#include <algorithm>
#include <utility>

namespace vpm::dissem {

namespace {
/// splitmix64: tiny, well-mixed, and exactly reproducible everywhere.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

FaultyTransport::FaultyTransport(FaultPlan plan, std::uint64_t seed,
                                 Deliver deliver)
    : plan_(plan), rng_state_(seed), deliver_(std::move(deliver)) {}

std::uint64_t FaultyTransport::next_u64() { return splitmix64(rng_state_); }

double FaultyTransport::next_unit() {
  // 53 high bits -> [0,1): every rate comparison is exact in a double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void FaultyTransport::send(Envelope envelope) {
  ++stats_.offered;
  // Fixed draw order regardless of which faults fire, so one plan's
  // schedule is a strict superset of a weaker plan's under the same seed
  // prefix decisions — and every run replays exactly.
  const bool drop = next_unit() < plan_.drop_rate;
  const bool corrupt = next_unit() < plan_.corrupt_rate;
  const bool duplicate = next_unit() < plan_.duplicate_rate;
  const bool reorder = next_unit() < plan_.reorder_rate;
  const double delay_draw = next_unit();
  const std::uint64_t bit_draw = next_u64();

  if (drop) {
    ++stats_.dropped;
    lost_[envelope.producer].push_back(envelope.sequence);
    return;
  }
  if (corrupt) {
    // One flipped payload bit (or MAC bit, for an empty payload): the
    // envelope still arrives, but no key verifies it — the store rejects
    // it and the sequence is as gone as a drop, just via the other door.
    ++stats_.corrupted;
    lost_[envelope.producer].push_back(envelope.sequence);
    if (!envelope.payload.empty()) {
      const std::size_t bit = static_cast<std::size_t>(
          bit_draw % (envelope.payload.size() * 8));
      envelope.payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    } else {
      envelope.mac ^= 1u;
    }
    ++stats_.delivered;
    deliver_(std::move(envelope));
    return;
  }
  if (duplicate) {
    // The copy trails by one tick: it arrives after the consumer has
    // likely fetched (and maybe acked past) the original, exercising the
    // store's duplicate/stale rejection rather than a trivial back-to-
    // back dedupe.
    ++stats_.duplicated;
    pending_.push_back(Pending{tick_ + 1, ++send_counter_, envelope});
  }
  if (reorder) {
    // Held to the next tick and released BEFORE that tick's delayed
    // envelopes, in reverse send order: consecutive reordered envelopes
    // swap on the wire.
    ++stats_.reordered;
    pending_.push_back(Pending{tick_ + 1, -(++send_counter_),
                               std::move(envelope)});
    return;
  }
  if (plan_.delay_rate > 0.0 && delay_draw < plan_.delay_rate) {
    ++stats_.delayed;
    const std::uint64_t ticks =
        1 + bit_draw % std::max<std::size_t>(plan_.max_delay_ticks, 1);
    pending_.push_back(
        Pending{tick_ + ticks, ++send_counter_, std::move(envelope)});
    return;
  }
  ++stats_.delivered;
  deliver_(std::move(envelope));
}

void FaultyTransport::release_due() {
  // Stable partition of due envelopes, released by (ready_tick, order):
  // negative orders (reordered) precede positive (delayed/duplicated)
  // within a tick, and reversed among themselves.
  std::vector<Pending> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->ready_tick <= tick_) {
      due.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(due.begin(), due.end(), [](const Pending& a, const Pending& b) {
    if (a.ready_tick != b.ready_tick) return a.ready_tick < b.ready_tick;
    if ((a.order < 0) != (b.order < 0)) return a.order < 0;
    if (a.order < 0) return a.order > b.order;  // reverse send order
    return a.order < b.order;
  });
  for (Pending& p : due) {
    ++stats_.delivered;
    deliver_(std::move(p.envelope));
  }
}

void FaultyTransport::tick() {
  ++tick_;
  release_due();
}

void FaultyTransport::flush() {
  if (pending_.empty()) return;
  for (const Pending& p : pending_) {
    tick_ = std::max(tick_, p.ready_tick);
  }
  release_due();
}

std::vector<std::uint64_t> FaultyTransport::lost_sequences(
    DomainId producer) const {
  const auto it = lost_.find(producer);
  if (it == lost_.end()) return {};
  std::vector<std::uint64_t> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vpm::dissem
