// Deterministic fault injection for the dissemination edge (ISSUE 6).
//
// The producer -> store leg of Assumption #2 runs over a WAN in any real
// deployment (community-probe fleets, federated monitoring): fetches time
// out, envelopes arrive duplicated, late, out of order, or bit-damaged.
// FaultyTransport is a seeded shim modelling exactly that leg: the
// exporter's envelope callback sends here instead of straight into
// ReceiptStore::ingest, and a declarative FaultPlan decides per envelope
// whether it is dropped, duplicated, reordered, delayed, or corrupted —
// reproducibly per seed, so every soak failure replays.
//
// Time is the caller's round clock: tick() once per reporting round
// releases in-flight envelopes whose delay expired.  The transport keeps
// per-producer ground truth of sequences it destroyed (dropped or
// corrupted — a corrupt envelope is delivered but can never be accepted,
// the store's MAC check rejects it), which is what the soak compares the
// verifier's reported RoundGaps against: every induced loss must surface,
// nothing else.
#ifndef VPM_DISSEM_FAULTY_TRANSPORT_HPP
#define VPM_DISSEM_FAULTY_TRANSPORT_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dissem/envelope.hpp"

namespace vpm::dissem {

/// Declarative per-envelope fault schedule.  Rates are independent
/// probabilities evaluated in a fixed order per envelope (drop, corrupt,
/// duplicate, then reorder-or-delay), so plans compose: a "kitchen sink"
/// plan is just every rate nonzero.  All-zero == a perfect wire.
struct FaultPlan {
  double drop_rate = 0.0;       ///< envelope vanishes entirely
  double corrupt_rate = 0.0;    ///< one payload bit flipped (MAC-dead)
  double duplicate_rate = 0.0;  ///< a second copy arrives next tick
  double reorder_rate = 0.0;    ///< held to next tick, released in
                                ///<   reverse send order
  double delay_rate = 0.0;      ///< held 1..max_delay_ticks ticks
  std::size_t max_delay_ticks = 2;

  [[nodiscard]] bool lossless() const noexcept {
    return drop_rate == 0.0 && corrupt_rate == 0.0;
  }
};

struct FaultStats {
  std::size_t offered = 0;    ///< send() calls
  std::size_t delivered = 0;  ///< deliveries (duplicates counted twice)
  std::size_t dropped = 0;
  std::size_t corrupted = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t delayed = 0;
};

class FaultyTransport {
 public:
  using Deliver = std::function<void(Envelope&&)>;

  /// `deliver` is the receiving edge (typically
  /// `[&store](Envelope&& e) { store.ingest(std::move(e)); }`); it must
  /// outlive the transport.  Same (plan, seed, send sequence) -> same
  /// fault schedule, byte for byte.
  FaultyTransport(FaultPlan plan, std::uint64_t seed, Deliver deliver);

  /// Producer-side send: applies the plan and delivers (now or later).
  void send(Envelope envelope);

  /// Advance the round clock and release every in-flight envelope whose
  /// time has come — reordered ones first, in reverse send order, then
  /// delayed ones in send order.
  void tick();

  /// Release everything still in flight (end of scenario: the wire
  /// eventually delivers what it did not destroy).
  void flush();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Ground truth: sequences of `producer` destroyed by the plan
  /// (dropped or corrupted), ascending.  The verifier's reported gaps
  /// must cover exactly these.
  [[nodiscard]] std::vector<std::uint64_t> lost_sequences(
      DomainId producer) const;

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pending_.size();
  }

 private:
  struct Pending {
    std::uint64_t ready_tick = 0;
    /// Release order within a tick: reordered envelopes get descending
    /// keys (reverse send order), delayed ones ascending.
    std::int64_t order = 0;
    Envelope envelope;
  };

  [[nodiscard]] double next_unit();  ///< uniform [0,1) off the seed
  [[nodiscard]] std::uint64_t next_u64();
  void release_due();

  FaultPlan plan_;
  std::uint64_t rng_state_;
  Deliver deliver_;
  FaultStats stats_;
  std::vector<Pending> pending_;
  std::uint64_t tick_ = 0;
  std::int64_t send_counter_ = 0;
  std::unordered_map<DomainId, std::vector<std::uint64_t>> lost_;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_FAULTY_TRANSPORT_HPP
