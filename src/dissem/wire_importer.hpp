// The consumer side of receipt dissemination: walks one producer's
// authenticated chunk stream out of a ReceiptStore and reconstructs the
// per-path receipt drains the producer's collector emitted — the byte-level
// inverse of WireExporter, closing the loop
//
//   collector drain -> wire batches -> sealed envelopes -> store ->
//   recovered drains -> PathVerifier.
//
// Recovery is exact up to the wire format's 1 µs time quantisation: a
// drain whose observation timestamps are microsecond-aligned round-trips
// `==`-equal (the round-trip equivalence suite pins this).
//
// Input is hostile (receipts cross trust boundaries, §4): every structural
// violation — unknown chunk/section tags, truncation, section length
// mismatches, unknown or revisited path keys, aggregate sections before a
// path's sample batch, split batches that disagree on thresholds — raises
// net::WireError and never corrupts the sink stream.
#ifndef VPM_DISSEM_WIRE_IMPORTER_HPP
#define VPM_DISSEM_WIRE_IMPORTER_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/receipt_sink.hpp"
#include "core/verifier.hpp"
#include "dissem/receipt_store.hpp"
#include "net/path_id.hpp"

namespace vpm::dissem {

class WireImporter {
 public:
  /// `paths` is the consumer's PathId table in global path index order
  /// (announced out of band, exactly like the encode/decode contract of
  /// core/receipt_batch).  Wire path keys resolve against it; recovered
  /// drains are tagged with the matching index.  Throws
  /// std::invalid_argument on duplicate path keys.
  explicit WireImporter(std::vector<net::PathId> paths);

  /// Decode every accepted chunk from `producer` in sequence order,
  /// streaming the recovered per-path drains into `sink` (same
  /// begin/samples/aggregates/end contract as the collector drains) —
  /// constant memory in the number of paths and chunks.  A producer that
  /// reports periodically ships several drains through one envelope
  /// sequence; each round's paths are emitted as their own
  /// begin/.../end_path groups, in shipped order (a fresh sample section
  /// for an already-imported path starts the next round).  Throws
  /// net::WireError on malformed input.
  void import_into(const ReceiptStore& store, DomainId producer,
                   core::ReceiptSink& sink) const;

  /// Materialized convenience form.
  [[nodiscard]] std::vector<core::IndexedPathDrain> import(
      const ReceiptStore& store, DomainId producer) const;

  /// Rebuild the HopReceipts of a single-path producer (one HOP's receipts
  /// about one path) for PathVerifier::add_hop.  Periodic reporting
  /// rounds concatenate, matching the collector's
  /// periodic-drains-concatenate-to-one-shot invariant.  Throws
  /// std::invalid_argument on an empty stream or a producer whose stream
  /// covers more than one path.
  [[nodiscard]] core::HopReceipts import_hop(const ReceiptStore& store,
                                             DomainId producer,
                                             net::HopId hop) const;

  [[nodiscard]] std::size_t path_count() const noexcept {
    return paths_.size();
  }

  /// The PathId at a decoded drain's path index (throws std::out_of_range
  /// on a bad index) — lets consumers map sink indices back to wire keys.
  [[nodiscard]] const net::PathId& path_at(std::size_t index) const {
    return paths_.at(index);
  }

  /// Stateful incremental decode: feed one producer's chunk payloads in
  /// sequence order ACROSS fetches — the cursor-consumer loop
  ///
  ///   store.fetch_from(me, producer, [&](seq, payload) {
  ///     session.feed(payload); last = seq; });
  ///   store.ack(me, producer, last);
  ///
  /// A path whose sections straddle a chunk (and therefore fetch)
  /// boundary reassembles exactly as in the one-shot import, because the
  /// assembly state persists between feeds.  Call finish() at true
  /// end-of-stream to close a trailing path (a stream whose producer
  /// ends every round with end_round() is already closed).  The parent
  /// importer and sink must outlive the session.
  class Session {
   public:
    Session(const WireImporter& importer, core::ReceiptSink& sink);

    /// Decode one accepted chunk payload.  Error handling is two-tier
    /// (ISSUE 6): a payload whose section framing does not byte-complete
    /// (a truncated fetch) throws a TRANSIENT net::WireError *before any
    /// state is touched* — the session stays usable and the same feed
    /// retried with the full payload decodes normally.  A structurally
    /// complete payload that fails decode throws a FATAL WireError and
    /// POISONS the session: the assembly may be half mutated and sections
    /// already emitted, so feed()/finish() then throw std::logic_error
    /// until resync() abandons the damaged round.
    void feed(std::span<const std::byte> payload);

    /// Close the path left open by a stream that did not end at a round
    /// boundary.  Idempotent; feed() after finish() throws, and finish()
    /// on a poisoned session throws rather than emit the half-decoded
    /// assembly.
    void finish();

    /// Gap recovery: discard the in-progress assembly (and clear poison)
    /// and skip every subsequent section until the next explicit round
    /// mark, where normal decoding resumes.  Call after a FATAL feed()
    /// (corrupt content) or after envelopes were lost upstream and the
    /// next available payload may start mid-round.  Path keys whose
    /// sections are discarded accumulate for take_skipped_keys(), so the
    /// caller can attribute the gap.  Throws after finish().
    void resync();

    /// True while resync() is still hunting for the next round mark.
    [[nodiscard]] bool resyncing() const noexcept { return skipping_; }

    /// True after a fatal decode error, until resync().
    [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

    /// True when the stream sits exactly on a reporting-round boundary:
    /// nothing half assembled, not poisoned, not resyncing.  After a
    /// feed() this holds iff the payload ended with a round mark — the
    /// safe point for a consumer to deliver buffered rounds and ack
    /// (crash-resume alignment).
    [[nodiscard]] bool at_round_boundary() const noexcept {
      return !cur_.active && !poisoned_ && !skipping_;
    }

    /// Wire path keys of sections discarded by resync skipping (deduped,
    /// first-skip order), including a half-assembled path abandoned by
    /// resync() itself.  Draining resets the list.
    [[nodiscard]] std::vector<std::uint64_t> take_skipped_keys();

   private:
    /// Per-stream assembly: a path's sections are contiguous (possibly
    /// straddling chunk boundaries), sample batches first; sample parts
    /// accumulate until the first aggregate section (or the end of the
    /// path) so the sink sees exactly one on_samples per path.
    struct Assembly {
      bool active = false;
      std::size_t index = 0;
      std::uint64_t key = 0;
      core::SampleReceipt samples;
      bool have_samples = false;   ///< at least one sample section decoded
      bool samples_emitted = false;  ///< begin_path/on_samples already sent
      bool have_aggregates = false;
      net::Timestamp last_agg_open;  ///< valid once have_aggregates
    };

    void close_path();
    void emit_samples();
    void decode_chunk(std::span<const std::byte> payload);
    void note_skipped(std::uint64_t key);
    /// Framing-only completeness scan; throws TRANSIENT WireError on
    /// truncation, touches no session state.
    static void prescan(std::span<const std::byte> payload);

    const WireImporter* importer_;
    core::ReceiptSink* sink_;
    Assembly cur_;
    std::vector<bool> seen_;  ///< paths already imported this round
    std::vector<std::uint64_t> skipped_keys_;  ///< deduped, resync order
    bool finished_ = false;
    bool poisoned_ = false;  ///< a fatal feed() threw mid-chunk
    bool skipping_ = false;  ///< resync() active: discard to next mark
  };

 private:
  std::vector<net::PathId> paths_;
  std::unordered_map<std::uint64_t, std::size_t> index_of_;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_WIRE_IMPORTER_HPP
