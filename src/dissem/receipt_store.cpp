#include "dissem/receipt_store.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace vpm::dissem {

const char* to_string(IngestResult r) {
  switch (r) {
    case IngestResult::kAccepted:
      return "accepted";
    case IngestResult::kUnknownProducer:
      return "unknown producer";
    case IngestResult::kBadAuthenticator:
      return "bad authenticator";
    case IngestResult::kStaleSequence:
      return "stale sequence";
    case IngestResult::kDuplicate:
      return "duplicate sequence";
  }
  return "unknown";
}

const char* to_string(AckResult r) {
  switch (r) {
    case AckResult::kAcked:
      return "acked";
    case AckResult::kUnknownConsumer:
      return "unknown consumer";
    case AckResult::kUnknownProducer:
      return "unknown producer";
    case AckResult::kRegressed:
      return "regressed ack";
    case AckResult::kAhead:
      return "ack ahead of stream";
  }
  return "unknown";
}

void ReceiptStore::register_producer(DomainId producer, DomainKey key) {
  keys_[producer] = key;
}

IngestOutcome ReceiptStore::ingest(Envelope envelope) {
  IngestOutcome out;
  out.got_sequence = envelope.sequence;
  const auto floor_it = gc_floor_.find(envelope.producer);
  const std::uint64_t floor =
      floor_it == gc_floor_.end() ? 0 : floor_it->second;
  out.expected_sequence = floor + 1;

  const auto key_it = keys_.find(envelope.producer);
  if (key_it == keys_.end()) {
    ++rejected_;
    out.result = IngestResult::kUnknownProducer;
    return out;
  }
  if (!verify(envelope, key_it->second)) {
    ++rejected_;
    out.result = IngestResult::kBadAuthenticator;
    return out;
  }
  // Sequence 0 sits below the cursor sentinel (cursor 0 == "nothing
  // acked"): it could never be fetched through a cursor nor acked, so it
  // would be silently lost to every consumer — reject it like any other
  // at-or-below-floor sequence.  The floor test is the replay/rollback
  // rejection over an out-of-order transport: collection only erases
  // sequences <= floor, so anything above the floor that is absent from
  // stored_ was genuinely never accepted (a reordered fresh envelope),
  // while a replayed collected envelope lands at or below the floor.
  if (envelope.sequence <= floor) {
    ++rejected_;
    out.result = IngestResult::kStaleSequence;
    return out;
  }
  auto& retained = stored_[envelope.producer];
  if (retained.contains(envelope.sequence)) {
    ++rejected_;
    out.result = IngestResult::kDuplicate;
    return out;
  }
  auto& last = last_sequence_[envelope.producer];
  last = std::max(last, envelope.sequence);
  const std::uint64_t sequence = envelope.sequence;
  stored_payload_bytes_ += envelope.payload.size();
  ++stored_envelopes_;
  retained.emplace(sequence, std::move(envelope));
  ++accepted_;
  out.result = IngestResult::kAccepted;
  return out;
}

std::vector<std::vector<std::byte>> ReceiptStore::payloads_from(
    DomainId producer) const {
  std::vector<std::vector<std::byte>> out;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [seq, env] : it->second) {
    out.emplace_back(env.payload);
  }
  return out;
}

void ReceiptStore::for_each_payload(
    DomainId producer,
    core::FunctionRef<void(std::span<const std::byte>)> visit) const {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  for (const auto& [seq, env] : it->second) {
    visit(env.payload);
  }
}

void ReceiptStore::register_consumer(const std::string& name) {
  cursors_.try_emplace(name);
}

std::uint64_t ReceiptStore::effective_cursor(
    const std::unordered_map<DomainId, std::uint64_t>& acked,
    DomainId producer) const {
  std::uint64_t cur = 0;
  const auto floor_it = gc_floor_.find(producer);
  if (floor_it != gc_floor_.end()) cur = floor_it->second;
  const auto ack_it = acked.find(producer);
  if (ack_it != acked.end()) cur = std::max(cur, ack_it->second);
  return cur;
}

void ReceiptStore::fetch_from(
    const std::string& consumer, DomainId producer,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  // A reference, not the iterator: `visit` may ingest (rehashing stored_
  // invalidates unordered_map iterators) — the mapped std::map itself is
  // stable.
  auto& envs = it->second;
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  // Resume strictly after the cursor, re-finding the successor BY KEY
  // after every visit: a cursor consumer legitimately acks at round
  // boundaries mid-walk, and the ack's garbage collection erases the map
  // node the walk just visited — incrementing that iterator would walk a
  // freed Rb-tree node (release-build segfault; ASan misses it because
  // the increment runs inside uninstrumented libstdc++).
  auto env_it = envs.upper_bound(cur);
  while (env_it != envs.end()) {
    const std::uint64_t seq = env_it->first;
    visit(seq, env_it->second.payload);
    env_it = envs.upper_bound(seq);
  }
}

AckOutcome ReceiptStore::ack(const std::string& consumer, DomainId producer,
                             std::uint64_t sequence) {
  AckOutcome out;
  out.got_sequence = sequence;
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    out.result = AckResult::kUnknownConsumer;
    return out;
  }
  if (!keys_.contains(producer)) {
    out.result = AckResult::kUnknownProducer;
    return out;
  }
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  if (sequence < cur) {
    out.result = AckResult::kRegressed;
    out.expected_sequence = cur;
    return out;
  }
  const auto last_it = last_sequence_.find(producer);
  const std::uint64_t last =
      last_it == last_sequence_.end() ? 0 : last_it->second;
  if (sequence > last) {
    out.result = AckResult::kAhead;
    out.expected_sequence = last;
    return out;
  }
  if (sequence > cur) {
    cons_it->second[producer] = sequence;
    collect_garbage(producer);
  }
  out.result = AckResult::kAcked;
  out.expected_sequence =
      effective_cursor(cons_it->second, producer);
  return out;
}

std::uint64_t ReceiptStore::cursor(const std::string& consumer,
                                   DomainId producer) const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  return effective_cursor(cons_it->second, producer);
}

std::uint64_t ReceiptStore::gc_floor(DomainId producer) const {
  const auto it = gc_floor_.find(producer);
  return it == gc_floor_.end() ? 0 : it->second;
}

std::size_t ReceiptStore::consumer_lag(const std::string& consumer,
                                       DomainId producer) const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return 0;
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  return static_cast<std::size_t>(
      std::distance(it->second.upper_bound(cur), it->second.end()));
}

void ReceiptStore::collect_garbage(DomainId producer) {
  if (cursors_.empty()) return;  // nobody registered: retain everything
  std::uint64_t floor = static_cast<std::uint64_t>(-1);
  for (const auto& [name, acked] : cursors_) {
    floor = std::min(floor, effective_cursor(acked, producer));
  }
  auto& floor_slot = gc_floor_[producer];
  if (floor <= floor_slot) return;
  floor_slot = floor;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  auto& envs = it->second;
  const auto end = envs.upper_bound(floor);
  for (auto env_it = envs.begin(); env_it != end; ++env_it) {
    stored_payload_bytes_ -= env_it->second.payload.size();
    --stored_envelopes_;
    ++gc_erased_;
  }
  envs.erase(envs.begin(), end);
}

}  // namespace vpm::dissem
