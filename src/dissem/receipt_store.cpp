#include "dissem/receipt_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vpm::dissem {

const char* to_string(IngestResult r) {
  switch (r) {
    case IngestResult::kAccepted:
      return "accepted";
    case IngestResult::kUnknownProducer:
      return "unknown producer";
    case IngestResult::kBadAuthenticator:
      return "bad authenticator";
    case IngestResult::kStaleSequence:
      return "stale sequence";
    case IngestResult::kDuplicate:
      return "duplicate sequence";
  }
  return "unknown";
}

const char* to_string(AckResult r) {
  switch (r) {
    case AckResult::kAcked:
      return "acked";
    case AckResult::kUnknownConsumer:
      return "unknown consumer";
    case AckResult::kUnknownProducer:
      return "unknown producer";
    case AckResult::kRegressed:
      return "regressed ack";
    case AckResult::kAhead:
      return "ack ahead of stream";
  }
  return "unknown";
}

ReceiptStore::ReceiptStore() : ReceiptStore(make_memory_storage()) {}

ReceiptStore::ReceiptStore(std::unique_ptr<EnvelopeStorage> storage)
    : storage_(std::move(storage)) {
  RecoveredState recovered = storage_->recover();
  for (auto& consumer : recovered.consumers) {
    Consumer& slot = cursors_[consumer.name];
    slot.all_producers = slot.all_producers || consumer.all_producers;
    for (const DomainId producer : consumer.subscribed) {
      slot.subscribed.insert(producer);
    }
    for (const auto& [producer, sequence] : consumer.acked) {
      auto& cur = slot.acked[producer];
      cur = std::max(cur, sequence);
      auto& last = last_sequence_[producer];
      last = std::max(last, sequence);
    }
  }
  // The head is the max of retained envelopes and acknowledgements: a
  // fully-acked producer can have zero retained envelopes (all collected
  // before the crash) yet its sequence stream must resume above the acks,
  // and collection never erases above the minimum ack, so the max ack
  // bounds everything ever erased.
  for (const auto& [producer, head] : recovered.producer_heads) {
    auto& last = last_sequence_[producer];
    last = std::max(last, head);
  }
  // Recompute every GC floor from the recovered acknowledgements.  Every
  // gating consumer has a persisted ack at or above where it came in
  // (subscribe/register baseline the floor as an initial ack), so the
  // gating minimum — and with it the recomputed floor — equals the
  // pre-crash floor; this also unlinks segments whose full ack predated
  // the crash but whose unlink didn't survive it.
  for (const auto& [producer, last] : last_sequence_) {
    (void)last;
    collect_garbage(producer);
  }
}

void ReceiptStore::register_producer(DomainId producer, DomainKey key) {
  keys_[producer] = key;
}

IngestOutcome ReceiptStore::ingest(Envelope envelope) {
  IngestOutcome out;
  out.got_sequence = envelope.sequence;
  const auto floor_it = gc_floor_.find(envelope.producer);
  const std::uint64_t floor =
      floor_it == gc_floor_.end() ? 0 : floor_it->second;
  out.expected_sequence = floor + 1;

  const auto key_it = keys_.find(envelope.producer);
  if (key_it == keys_.end()) {
    ++rejected_;
    out.result = IngestResult::kUnknownProducer;
    return out;
  }
  if (!verify(envelope, key_it->second)) {
    ++rejected_;
    out.result = IngestResult::kBadAuthenticator;
    return out;
  }
  // Sequence 0 sits below the cursor sentinel (cursor 0 == "nothing
  // acked"): it could never be fetched through a cursor nor acked, so it
  // would be silently lost to every consumer — reject it like any other
  // at-or-below-floor sequence.  The floor test is the replay/rollback
  // rejection over an out-of-order transport: collection only erases
  // sequences <= floor, so anything above the floor that is absent from
  // the backend was genuinely never accepted (a reordered fresh
  // envelope), while a replayed collected envelope lands at or below the
  // floor.
  if (envelope.sequence <= floor) {
    ++rejected_;
    out.result = IngestResult::kStaleSequence;
    return out;
  }
  if (storage_->contains(envelope.producer, envelope.sequence)) {
    ++rejected_;
    out.result = IngestResult::kDuplicate;
    return out;
  }
  auto& last = last_sequence_[envelope.producer];
  last = std::max(last, envelope.sequence);
  storage_->put(std::move(envelope));
  ++accepted_;
  out.result = IngestResult::kAccepted;
  return out;
}

std::vector<std::vector<std::byte>> ReceiptStore::payloads_from(
    DomainId producer) const {
  std::vector<std::vector<std::byte>> out;
  storage_->visit_after(
      producer, 0,
      [&out](std::uint64_t, std::span<const std::byte> payload) {
        out.emplace_back(payload.begin(), payload.end());
      });
  return out;
}

void ReceiptStore::for_each_payload(
    DomainId producer,
    core::FunctionRef<void(std::span<const std::byte>)> visit) const {
  storage_->visit_after(
      producer, 0,
      [&visit](std::uint64_t, std::span<const std::byte> payload) {
        visit(payload);
      });
}

void ReceiptStore::register_consumer(const std::string& name) {
  Consumer& slot = cursors_[name];
  slot.all_producers = true;
  storage_->persist_registration(name, true);
  for (const auto& [producer, floor] : gc_floor_) {
    baseline_at_floor(slot, name, producer, floor);
  }
}

void ReceiptStore::subscribe(const std::string& name, DomainId producer) {
  Consumer& slot = cursors_[name];
  if (slot.all_producers) return;  // already gates everything
  slot.subscribed.insert(producer);
  storage_->persist_subscription(name, producer);
  const auto floor_it = gc_floor_.find(producer);
  if (floor_it != gc_floor_.end()) {
    baseline_at_floor(slot, name, producer, floor_it->second);
  }
}

void ReceiptStore::baseline_at_floor(Consumer& slot, const std::string& name,
                                     DomainId producer, std::uint64_t floor) {
  // A consumer that starts gating a producer mid-stream begins at the
  // producer's current GC floor — it can never fetch below it — and that
  // baseline must be DURABLE: recovery recomputes floors from persisted
  // acknowledgements alone, so an ack-less late subscriber would
  // otherwise rewind the recovered floor to zero, un-collecting
  // sequences it never owned and re-serving them after a crash.
  auto& cur = slot.acked[producer];
  if (floor > cur) {
    cur = floor;
    storage_->persist_ack(name, producer, floor);
  }
}

std::uint64_t ReceiptStore::effective_cursor(const Consumer& consumer,
                                             DomainId producer) const {
  std::uint64_t cur = 0;
  const auto floor_it = gc_floor_.find(producer);
  if (floor_it != gc_floor_.end()) cur = floor_it->second;
  const auto ack_it = consumer.acked.find(producer);
  if (ack_it != consumer.acked.end()) cur = std::max(cur, ack_it->second);
  return cur;
}

void ReceiptStore::fetch_from(
    const std::string& consumer, DomainId producer,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  storage_->visit_after(producer, cur, visit);
}

AckOutcome ReceiptStore::ack(const std::string& consumer, DomainId producer,
                             std::uint64_t sequence) {
  AckOutcome out;
  out.got_sequence = sequence;
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    out.result = AckResult::kUnknownConsumer;
    return out;
  }
  if (!keys_.contains(producer)) {
    out.result = AckResult::kUnknownProducer;
    return out;
  }
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  if (sequence < cur) {
    out.result = AckResult::kRegressed;
    out.expected_sequence = cur;
    return out;
  }
  const auto last_it = last_sequence_.find(producer);
  const std::uint64_t last =
      last_it == last_sequence_.end() ? 0 : last_it->second;
  if (sequence > last) {
    out.result = AckResult::kAhead;
    out.expected_sequence = last;
    return out;
  }
  if (sequence > cur) {
    cons_it->second.acked[producer] = sequence;
    storage_->persist_ack(consumer, producer, sequence);
    collect_garbage(producer);
  }
  out.result = AckResult::kAcked;
  const std::uint64_t after = effective_cursor(cons_it->second, producer);
  out.expected_sequence = after;
  // Lag AFTER collection: count against what the store still retains, not
  // against envelopes this very ack just erased.
  out.consumer_lag = storage_->count_after(producer, after);
  return out;
}

std::uint64_t ReceiptStore::cursor(const std::string& consumer,
                                   DomainId producer) const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  return effective_cursor(cons_it->second, producer);
}

std::uint64_t ReceiptStore::gc_floor(DomainId producer) const {
  const auto it = gc_floor_.find(producer);
  return it == gc_floor_.end() ? 0 : it->second;
}

std::size_t ReceiptStore::consumer_lag(const std::string& consumer,
                                       DomainId producer) const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  return storage_->count_after(producer,
                               effective_cursor(cons_it->second, producer));
}

void ReceiptStore::collect_garbage(DomainId producer) {
  // The floor is the minimum effective cursor over consumers that GATE
  // this producer (all-producer registrants plus its subscribers).  With
  // no gating consumer nothing is collected: an unsubscribed "tap"
  // fetching this producer cannot cause data loss for a gating consumer
  // that registers later, and the historical no-consumers-no-GC rule
  // falls out as the zero-gating case.
  std::uint64_t floor = static_cast<std::uint64_t>(-1);
  bool gated = false;
  for (const auto& [name, consumer] : cursors_) {
    if (!consumer.gates(producer)) continue;
    gated = true;
    floor = std::min(floor, effective_cursor(consumer, producer));
  }
  if (!gated) return;
  auto& floor_slot = gc_floor_[producer];
  if (floor <= floor_slot) return;
  floor_slot = floor;
  storage_->erase_through(producer, floor);
}

}  // namespace vpm::dissem
