#include "dissem/receipt_store.hpp"

namespace vpm::dissem {

const char* to_string(IngestResult r) {
  switch (r) {
    case IngestResult::kAccepted:
      return "accepted";
    case IngestResult::kUnknownProducer:
      return "unknown producer";
    case IngestResult::kBadAuthenticator:
      return "bad authenticator";
    case IngestResult::kStaleSequence:
      return "stale sequence";
  }
  return "unknown";
}

void ReceiptStore::register_producer(DomainId producer, DomainKey key) {
  keys_[producer] = key;
}

IngestResult ReceiptStore::ingest(Envelope envelope) {
  const auto key_it = keys_.find(envelope.producer);
  if (key_it == keys_.end()) {
    ++rejected_;
    return IngestResult::kUnknownProducer;
  }
  if (!verify(envelope, key_it->second)) {
    ++rejected_;
    return IngestResult::kBadAuthenticator;
  }
  auto& last = last_sequence_[envelope.producer];
  if (!stored_[envelope.producer].empty() && envelope.sequence <= last) {
    ++rejected_;
    return IngestResult::kStaleSequence;
  }
  last = envelope.sequence;
  const DomainId producer = envelope.producer;
  const std::uint64_t sequence = envelope.sequence;
  stored_[producer].emplace(sequence, std::move(envelope));
  ++accepted_;
  return IngestResult::kAccepted;
}

std::vector<std::vector<std::byte>> ReceiptStore::payloads_from(
    DomainId producer) const {
  std::vector<std::vector<std::byte>> out;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [seq, env] : it->second) {
    out.emplace_back(env.payload);
  }
  return out;
}

void ReceiptStore::for_each_payload(
    DomainId producer,
    const std::function<void(std::span<const std::byte>)>& visit) const {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  for (const auto& [seq, env] : it->second) {
    visit(env.payload);
  }
}

}  // namespace vpm::dissem
