#include "dissem/receipt_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpm::dissem {

const char* to_string(IngestResult r) {
  switch (r) {
    case IngestResult::kAccepted:
      return "accepted";
    case IngestResult::kUnknownProducer:
      return "unknown producer";
    case IngestResult::kBadAuthenticator:
      return "bad authenticator";
    case IngestResult::kStaleSequence:
      return "stale sequence";
  }
  return "unknown";
}

const char* to_string(AckResult r) {
  switch (r) {
    case AckResult::kAcked:
      return "acked";
    case AckResult::kUnknownConsumer:
      return "unknown consumer";
    case AckResult::kUnknownProducer:
      return "unknown producer";
    case AckResult::kRegressed:
      return "regressed ack";
    case AckResult::kAhead:
      return "ack ahead of stream";
  }
  return "unknown";
}

void ReceiptStore::register_producer(DomainId producer, DomainKey key) {
  keys_[producer] = key;
}

IngestResult ReceiptStore::ingest(Envelope envelope) {
  const auto key_it = keys_.find(envelope.producer);
  if (key_it == keys_.end()) {
    ++rejected_;
    return IngestResult::kUnknownProducer;
  }
  if (!verify(envelope, key_it->second)) {
    ++rejected_;
    return IngestResult::kBadAuthenticator;
  }
  // Sequence 0 sits below the cursor sentinel (cursor 0 == "nothing
  // acked"): it could never be fetched through a cursor nor acked, so it
  // would be silently lost to every consumer — reject it like any other
  // below-floor sequence.
  if (envelope.sequence == 0) {
    ++rejected_;
    return IngestResult::kStaleSequence;
  }
  // Replay/rollback rejection keys off the accepted-sequence HISTORY, not
  // the retained envelopes: garbage collection empties stored_, and an
  // emptiness test here would re-admit a replayed old envelope the moment
  // its original was collected.
  const auto last_it = last_sequence_.find(envelope.producer);
  if (last_it != last_sequence_.end() &&
      envelope.sequence <= last_it->second) {
    ++rejected_;
    return IngestResult::kStaleSequence;
  }
  last_sequence_[envelope.producer] = envelope.sequence;
  const DomainId producer = envelope.producer;
  const std::uint64_t sequence = envelope.sequence;
  stored_payload_bytes_ += envelope.payload.size();
  ++stored_envelopes_;
  stored_[producer].emplace(sequence, std::move(envelope));
  ++accepted_;
  return IngestResult::kAccepted;
}

std::vector<std::vector<std::byte>> ReceiptStore::payloads_from(
    DomainId producer) const {
  std::vector<std::vector<std::byte>> out;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [seq, env] : it->second) {
    out.emplace_back(env.payload);
  }
  return out;
}

void ReceiptStore::for_each_payload(
    DomainId producer,
    core::FunctionRef<void(std::span<const std::byte>)> visit) const {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  for (const auto& [seq, env] : it->second) {
    visit(env.payload);
  }
}

void ReceiptStore::register_consumer(const std::string& name) {
  cursors_.try_emplace(name);
}

std::uint64_t ReceiptStore::effective_cursor(
    const std::unordered_map<DomainId, std::uint64_t>& acked,
    DomainId producer) const {
  std::uint64_t cur = 0;
  const auto floor_it = gc_floor_.find(producer);
  if (floor_it != gc_floor_.end()) cur = floor_it->second;
  const auto ack_it = acked.find(producer);
  if (ack_it != acked.end()) cur = std::max(cur, ack_it->second);
  return cur;
}

void ReceiptStore::fetch_from(
    const std::string& consumer, DomainId producer,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  // Resume strictly after the cursor: upper_bound of the acked sequence.
  for (auto env_it = it->second.upper_bound(cur); env_it != it->second.end();
       ++env_it) {
    visit(env_it->first, env_it->second.payload);
  }
}

AckResult ReceiptStore::ack(const std::string& consumer, DomainId producer,
                            std::uint64_t sequence) {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) return AckResult::kUnknownConsumer;
  if (!keys_.contains(producer)) return AckResult::kUnknownProducer;
  const std::uint64_t cur = effective_cursor(cons_it->second, producer);
  if (sequence < cur) return AckResult::kRegressed;
  const auto last_it = last_sequence_.find(producer);
  const std::uint64_t last =
      last_it == last_sequence_.end() ? 0 : last_it->second;
  if (sequence > last) return AckResult::kAhead;
  if (sequence > cur) {
    cons_it->second[producer] = sequence;
    collect_garbage(producer);
  }
  return AckResult::kAcked;
}

std::uint64_t ReceiptStore::cursor(const std::string& consumer,
                                   DomainId producer) const {
  const auto cons_it = cursors_.find(consumer);
  if (cons_it == cursors_.end()) {
    throw std::invalid_argument("ReceiptStore: unregistered consumer \"" +
                                consumer + "\"");
  }
  return effective_cursor(cons_it->second, producer);
}

std::uint64_t ReceiptStore::gc_floor(DomainId producer) const {
  const auto it = gc_floor_.find(producer);
  return it == gc_floor_.end() ? 0 : it->second;
}

void ReceiptStore::collect_garbage(DomainId producer) {
  if (cursors_.empty()) return;  // nobody registered: retain everything
  std::uint64_t floor = static_cast<std::uint64_t>(-1);
  for (const auto& [name, acked] : cursors_) {
    floor = std::min(floor, effective_cursor(acked, producer));
  }
  auto& floor_slot = gc_floor_[producer];
  if (floor <= floor_slot) return;
  floor_slot = floor;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  auto& envs = it->second;
  const auto end = envs.upper_bound(floor);
  for (auto env_it = envs.begin(); env_it != end; ++env_it) {
    stored_payload_bytes_ -= env_it->second.payload.size();
    --stored_envelopes_;
    ++gc_erased_;
  }
  envs.erase(envs.begin(), end);
}

}  // namespace vpm::dissem
