#include "dissem/storage.hpp"

#include <iterator>

namespace vpm::dissem {

void MemoryStorage::put(Envelope envelope) {
  auto& retained = stored_[envelope.producer];
  const std::uint64_t sequence = envelope.sequence;
  stats_.payload_bytes += envelope.payload.size();
  ++stats_.envelopes;
  retained.emplace(sequence, std::move(envelope));
}

bool MemoryStorage::contains(DomainId producer,
                             std::uint64_t sequence) const {
  const auto it = stored_.find(producer);
  return it != stored_.end() && it->second.contains(sequence);
}

void MemoryStorage::visit_after(
    DomainId producer, std::uint64_t cursor,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  // A reference, not the iterator: `visit` may put() (inserting a new
  // producer mutates stored_) — the mapped std::map itself is stable.
  const auto& envs = it->second;
  // Resume strictly after the cursor, re-finding the successor BY KEY
  // after every visit: a cursor consumer legitimately acks at round
  // boundaries mid-walk, and the ack's garbage collection erases the map
  // node the walk just visited — incrementing that iterator would walk a
  // freed Rb-tree node (release-build segfault; ASan misses it because
  // the increment runs inside uninstrumented libstdc++).
  auto env_it = envs.upper_bound(cursor);
  while (env_it != envs.end()) {
    const std::uint64_t seq = env_it->first;
    visit(seq, env_it->second.payload);
    env_it = envs.upper_bound(seq);
  }
}

std::size_t MemoryStorage::count_after(DomainId producer,
                                       std::uint64_t cursor) const {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return 0;
  return static_cast<std::size_t>(
      std::distance(it->second.upper_bound(cursor), it->second.end()));
}

void MemoryStorage::erase_through(DomainId producer, std::uint64_t floor) {
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return;
  auto& envs = it->second;
  const auto end = envs.upper_bound(floor);
  for (auto env_it = envs.begin(); env_it != end; ++env_it) {
    stats_.payload_bytes -= env_it->second.payload.size();
    --stats_.envelopes;
    ++stats_.erased;
  }
  envs.erase(envs.begin(), end);
}

StorageStats MemoryStorage::producer_stats(DomainId producer) const {
  StorageStats out;
  const auto it = stored_.find(producer);
  if (it == stored_.end()) return out;
  out.envelopes = it->second.size();
  for (const auto& [seq, env] : it->second) {
    out.payload_bytes += env.payload.size();
  }
  return out;
}

std::unique_ptr<EnvelopeStorage> make_memory_storage() {
  return std::make_unique<MemoryStorage>();
}

}  // namespace vpm::dissem
