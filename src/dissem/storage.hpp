// Retention backend behind dissem::ReceiptStore (ISSUE 9).
//
// The store splits into POLICY (producer keys, envelope authentication,
// sequence/floor admission, per-consumer cursors — ReceiptStore) and
// RETENTION (where accepted envelopes live until every gating consumer has
// acknowledged them — EnvelopeStorage).  Two backends implement the
// interface:
//
//   * MemoryStorage — the pre-ISSUE-9 per-producer ordered map, verbatim.
//     Nothing survives the process; recover() is empty.  The PR 4-7
//     byte-identity soaks pin this backend against the old monolithic
//     store.
//   * SegmentStorage (segment_store.hpp) — per-producer disk segment
//     files plus a durable cursor log; a restart recovers retained
//     envelopes, consumer registrations, and acknowledgements.
//
// Contract notes shared by all backends:
//   * put() is called only for sequences the policy layer has admitted:
//     above the producer's GC floor and not contains().  Backends never
//     see replays.
//   * visit_after() yields (sequence, payload) strictly after `cursor` in
//     ascending order, re-finding the successor BY SEQUENCE after every
//     visit: the visitor may acknowledge mid-walk and the triggered
//     erase_through() may drop the node (or unlink the whole segment) it
//     just visited.  The payload span is valid only for the duration of
//     the visit; visits must not nest.
//   * erase_through(producer, floor) releases sequences <= floor.  A
//     backend may retain MORE than asked (SegmentStorage unlinks whole
//     segment files only once the floor passes their last sequence) but
//     never less, and what it over-retains is invisible: every read path
//     starts after a cursor >= the floor.
//   * persist_*() record consumer state for recover(); the memory backend
//     ignores them.
#ifndef VPM_DISSEM_STORAGE_HPP
#define VPM_DISSEM_STORAGE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/function_ref.hpp"
#include "dissem/envelope.hpp"

namespace vpm::dissem {

/// One consumer's durable state as surfaced by recover().
struct ConsumerRecord {
  std::string name;
  /// Registered via register_consumer(): gates GC for every producer.
  bool all_producers = false;
  /// Producers this consumer gates via subscribe().
  std::vector<DomainId> subscribed;
  /// (producer, last acknowledged sequence) pairs.
  std::vector<std::pair<DomainId, std::uint64_t>> acked;
};

/// Everything a backend can tell the policy layer at attach time.
/// Producer KEYS are deliberately absent: authentication material is the
/// operator's to re-register at boot, never persisted beside the data it
/// authenticates.
struct RecoveredState {
  std::vector<ConsumerRecord> consumers;
  /// (producer, highest retained sequence) for every producer with
  /// retained envelopes.  The store folds acknowledgements in on top (a
  /// fully-acked producer may have no retained envelopes but still a
  /// nonzero head).
  std::vector<std::pair<DomainId, std::uint64_t>> producer_heads;
};

/// Retention accounting.  The first three fields are meaningful for every
/// backend; the segment fields read 0 for MemoryStorage.
struct StorageStats {
  std::size_t envelopes = 0;      ///< retained (servable) envelopes
  std::size_t payload_bytes = 0;  ///< their payload bytes
  std::size_t erased = 0;         ///< envelopes released over the lifetime
  std::size_t segments_live = 0;      ///< segment files currently on disk
  std::size_t segments_unlinked = 0;  ///< segment files GC'd (lifetime)
  std::size_t bytes_on_disk = 0;      ///< segment + cursor-log file bytes
};

class EnvelopeStorage {
 public:
  virtual ~EnvelopeStorage() = default;

  /// Surface durable state.  Called exactly once, by the attaching
  /// ReceiptStore's constructor, before any other method.
  virtual RecoveredState recover() = 0;

  /// Retain an admitted envelope (see header contract: never a replay).
  virtual void put(Envelope envelope) = 0;

  [[nodiscard]] virtual bool contains(DomainId producer,
                                      std::uint64_t sequence) const = 0;

  /// Visit retained (sequence, payload) pairs strictly after `cursor`,
  /// ascending, mutation-tolerant (see header contract).
  virtual void visit_after(
      DomainId producer, std::uint64_t cursor,
      core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)>
          visit) const = 0;

  /// Retained envelopes with sequence > cursor (consumer-lag arithmetic).
  [[nodiscard]] virtual std::size_t count_after(
      DomainId producer, std::uint64_t cursor) const = 0;

  /// Release sequences <= floor (possibly retaining more; see contract).
  virtual void erase_through(DomainId producer, std::uint64_t floor) = 0;

  /// Durable-consumer hooks; no-ops for volatile backends.
  virtual void persist_registration(const std::string& name,
                                    bool all_producers) = 0;
  virtual void persist_subscription(const std::string& name,
                                    DomainId producer) = 0;
  virtual void persist_ack(const std::string& name, DomainId producer,
                           std::uint64_t sequence) = 0;

  [[nodiscard]] virtual StorageStats stats() const = 0;
  [[nodiscard]] virtual StorageStats producer_stats(
      DomainId producer) const = 0;
};

/// The pre-ISSUE-9 retention structure: one ordered map per producer.
class MemoryStorage final : public EnvelopeStorage {
 public:
  RecoveredState recover() override { return {}; }
  void put(Envelope envelope) override;
  [[nodiscard]] bool contains(DomainId producer,
                              std::uint64_t sequence) const override;
  void visit_after(
      DomainId producer, std::uint64_t cursor,
      core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)>
          visit) const override;
  [[nodiscard]] std::size_t count_after(DomainId producer,
                                        std::uint64_t cursor) const override;
  void erase_through(DomainId producer, std::uint64_t floor) override;
  void persist_registration(const std::string&, bool) override {}
  void persist_subscription(const std::string&, DomainId) override {}
  void persist_ack(const std::string&, DomainId, std::uint64_t) override {}
  [[nodiscard]] StorageStats stats() const override { return stats_; }
  [[nodiscard]] StorageStats producer_stats(DomainId producer) const override;

 private:
  std::map<DomainId, std::map<std::uint64_t, Envelope>> stored_;
  StorageStats stats_;
};

[[nodiscard]] std::unique_ptr<EnvelopeStorage> make_memory_storage();

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_STORAGE_HPP
