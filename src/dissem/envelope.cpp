#include "dissem/envelope.hpp"

#include "net/bob_hash.hpp"

namespace vpm::dissem {
namespace {

constexpr std::uint8_t kEnvelopeTag = 0x21;
// Refuse payloads above 16 MiB before allocating: a receipt batch for one
// reporting period is kilobytes.
constexpr std::size_t kMaxPayload = 16u << 20;

}  // namespace

std::uint64_t authenticate(DomainKey key,
                           std::span<const std::byte> payload) {
  const auto key_lo = static_cast<std::uint32_t>(key);
  const auto key_hi = static_cast<std::uint32_t>(key >> 32);
  const std::uint32_t a = net::bob_hash(payload, key_lo);
  const std::uint32_t b = net::bob_hash(payload, key_hi ^ 0x9e3779b9u);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

Envelope seal(DomainId producer, std::uint64_t sequence,
              std::vector<std::byte> payload, DomainKey key) {
  Envelope e;
  e.producer = producer;
  e.sequence = sequence;
  e.payload = std::move(payload);
  // Bind header fields into the MAC so they cannot be swapped either.
  net::ByteWriter bound;
  bound.u32(producer);
  bound.u64(sequence);
  bound.bytes(e.payload);
  e.mac = authenticate(key, bound.view());
  return e;
}

bool verify(const Envelope& e, DomainKey key) {
  net::ByteWriter bound;
  bound.u32(e.producer);
  bound.u64(e.sequence);
  bound.bytes(e.payload);
  return authenticate(key, bound.view()) == e.mac;
}

void encode(const Envelope& e, net::ByteWriter& out) {
  out.u8(kEnvelopeTag);
  out.u32(e.producer);
  out.u64(e.sequence);
  out.u32(static_cast<std::uint32_t>(e.payload.size()));
  out.bytes(e.payload);
  out.u64(e.mac);
}

Envelope decode_envelope(net::ByteReader& in) {
  if (in.u8() != kEnvelopeTag) {
    throw net::WireError("expected envelope tag");
  }
  Envelope e;
  e.producer = in.u32();
  e.sequence = in.u64();
  const std::uint32_t len = in.u32();
  if (len > kMaxPayload) {
    throw net::WireError("envelope payload length implausible");
  }
  in.expect_at_least(len + 8);
  e.payload.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    e.payload.push_back(static_cast<std::byte>(in.u8()));
  }
  e.mac = in.u64();
  return e;
}

}  // namespace vpm::dissem
