#include "dissem/segment_store.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace vpm::dissem {
namespace {

/// Fixed envelope-encoding prefix before the payload bytes: tag u8 +
/// producer u32 + sequence u64 + payload-length u32 (envelope.cpp).
constexpr std::size_t kEnvelopePrefixBytes = 1 + 4 + 8 + 4;

constexpr std::uint32_t kCursorMagic = 0x52554356u;  // "VCUR" LE
constexpr std::uint8_t kCursorVersion = 1;
constexpr std::size_t kCursorHeaderBytes = 4 + 1;
/// Names are u16-length-prefixed; anything above this bound is damage.
constexpr std::uint32_t kMaxCursorRecordBytes = 64u * 1024u + 32u;

constexpr std::uint8_t kCursorRegister = 1;
constexpr std::uint8_t kCursorSubscribe = 2;
constexpr std::uint8_t kCursorAck = 3;

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[nodiscard]] std::string segment_file_name(DomainId producer,
                                            std::uint64_t file_id) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "p%08x-%016" PRIx64 ".seg", producer,
                file_id);
  return buf;
}

[[nodiscard]] bool parse_segment_file_name(const std::string& name,
                                           DomainId& producer,
                                           std::uint64_t& file_id) {
  unsigned int p = 0;
  std::uint64_t id = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "p%8x-%16" SCNx64 ".se%c", &p, &id, &tail) !=
          3 ||
      tail != 'g') {
    return false;
  }
  producer = static_cast<DomainId>(p);
  file_id = id;
  return true;
}

[[nodiscard]] std::vector<std::byte> read_file_bytes(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("SegmentStore: cannot open " + path.string());
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    throw std::runtime_error("SegmentStore: short read of " + path.string());
  }
  return data;
}

void write_stream(std::ofstream& out, std::span<const std::byte> bytes,
                  const char* what) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error(std::string("SegmentStore: write failed: ") +
                             what);
  }
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = table[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void write_segment_header(DomainId producer, net::ByteWriter& out) {
  out.u32(kSegmentMagic);
  out.u8(kSegmentVersion);
  out.u32(producer);
}

void append_segment_record(const Envelope& envelope, net::ByteWriter& out) {
  net::ByteWriter body;
  encode(envelope, body);
  const auto view = body.view();
  out.u32(static_cast<std::uint32_t>(view.size()));
  out.bytes(view);
  out.u32(crc32(view));
}

SegmentScan scan_segment(std::span<const std::byte> data, bool recover) {
  SegmentScan scan;
  net::ByteReader header(data);
  // Header damage is unrecoverable in both modes: a file without a valid
  // header is not a segment (torn CREATES are handled by the store, which
  // unlinks sub-header-size files before parsing).
  header.expect_at_least(kSegmentHeaderBytes);  // throws transient
  if (header.u32() != kSegmentMagic) {
    throw net::WireError("segment: bad magic");
  }
  if (header.u8() != kSegmentVersion) {
    throw net::WireError("segment: unsupported version");
  }
  scan.producer = header.u32();
  std::size_t offset = kSegmentHeaderBytes;
  scan.valid_bytes = offset;

  const auto damaged = [&](const char* what, bool structural) {
    if (recover) {
      scan.torn = true;
      return true;  // stop the scan; valid_bytes marks the keep-prefix
    }
    throw net::WireError(std::string("segment record: ") + what,
                         structural ? net::WireError::Severity::kFatal
                                    : net::WireError::Severity::kTransient);
  };

  while (offset < data.size()) {
    const std::size_t remaining = data.size() - offset;
    if (remaining < 4) {
      damaged("torn length field", /*structural=*/false);
      break;
    }
    net::ByteReader len_reader(data.subspan(offset, 4));
    const std::uint32_t len = len_reader.u32();
    // Bound the length BEFORE trusting it: an absurd value must not turn
    // into an allocation or a read past the buffer.
    if (len == 0 || len > kMaxSegmentRecordBytes) {
      damaged("absurd record length", /*structural=*/true);
      break;
    }
    if (remaining < 4 + static_cast<std::size_t>(len) + 4) {
      damaged("torn record body", /*structural=*/false);
      break;
    }
    const auto body = data.subspan(offset + 4, len);
    net::ByteReader crc_reader(data.subspan(offset + 4 + len, 4));
    if (crc_reader.u32() != crc32(body)) {
      damaged("checksum mismatch", /*structural=*/true);
      break;
    }
    Envelope envelope;
    try {
      net::ByteReader body_reader(body);
      envelope = decode_envelope(body_reader);
      if (!body_reader.done()) {
        throw net::WireError("segment record: trailing bytes in envelope");
      }
    } catch (const net::WireError&) {
      // The CRC matched, so the bytes we WROTE were malformed — that is
      // structural damage whatever the inner severity said.
      if (damaged("malformed envelope", /*structural=*/true)) break;
    }
    if (envelope.producer != scan.producer) {
      damaged("producer mismatch", /*structural=*/true);
      break;
    }
    SegmentRecordRef ref;
    ref.sequence = envelope.sequence;
    ref.payload_offset = offset + 4 + kEnvelopePrefixBytes;
    ref.payload_size = envelope.payload.size();
    ref.record_end = offset + 4 + len + 4;
    scan.records.push_back(ref);
    offset = ref.record_end;
    scan.valid_bytes = offset;
  }
  return scan;
}

// --- SegmentStore -------------------------------------------------------

SegmentStore::SegmentStore(SegmentStoreConfig cfg) : cfg_(std::move(cfg)) {
  std::filesystem::create_directories(cfg_.directory);
  recover_directory();
}

void SegmentStore::recover_directory() {
  for (const auto& entry :
       std::filesystem::directory_iterator(cfg_.directory)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".seg") {
      continue;
    }
    DomainId producer = 0;
    std::uint64_t file_id = 0;
    if (!parse_segment_file_name(entry.path().filename().string(), producer,
                                 file_id)) {
      throw std::runtime_error("SegmentStore: foreign file in store: " +
                               entry.path().string());
    }
    const auto data = read_file_bytes(entry.path());
    if (data.size() < kSegmentHeaderBytes) {
      // Torn CREATE: the crash hit before the header finished; the file
      // cannot hold a record, so there is nothing to preserve.
      std::filesystem::remove(entry.path());
      continue;
    }
    const SegmentScan scan = scan_segment(data, /*recover=*/true);
    if (scan.producer != producer) {
      throw std::runtime_error("SegmentStore: producer mismatch in " +
                               entry.path().string());
    }
    if (scan.records.empty()) {
      std::filesystem::remove(entry.path());  // header-only: no data
      continue;
    }
    if (scan.torn) {
      std::filesystem::resize_file(entry.path(), scan.valid_bytes);
    }
    Chain& chain = chains_[producer];
    Segment seg;
    seg.path = entry.path();
    seg.bytes = scan.valid_bytes;
    for (const SegmentRecordRef& rec : scan.records) {
      if (!chain.index
               .emplace(rec.sequence, RecordLoc{file_id, rec.payload_offset,
                                                rec.payload_size})
               .second) {
        throw std::runtime_error(
            "SegmentStore: duplicate sequence across segments in " +
            entry.path().string());
      }
      seg.sequences.push_back(rec.sequence);
      seg.max_sequence = std::max(seg.max_sequence, rec.sequence);
      seg.payload_bytes += rec.payload_size;
    }
    chain.payload_bytes += seg.payload_bytes;
    chain.next_file_id = std::max(chain.next_file_id, file_id + 1);
    chain.segments.emplace(file_id, std::move(seg));
  }
}

SegmentStore::Segment& SegmentStore::active_segment(Chain& chain,
                                                    DomainId producer) {
  if (chain.has_active) {
    Segment& seg = chain.segments.at(chain.active_file_id);
    if (seg.bytes < cfg_.max_segment_bytes) return seg;
    seal_active(chain);
  }
  const std::uint64_t file_id = chain.next_file_id++;
  Segment seg;
  seg.path = cfg_.directory / segment_file_name(producer, file_id);
  seg.writer = std::make_unique<std::ofstream>(
      seg.path, std::ios::binary | std::ios::trunc);
  if (!*seg.writer) {
    throw std::runtime_error("SegmentStore: cannot create " +
                             seg.path.string());
  }
  net::ByteWriter header;
  write_segment_header(producer, header);
  write_stream(*seg.writer, header.view(), "segment header");
  seg.bytes = header.size();
  chain.active_file_id = file_id;
  chain.has_active = true;
  return chain.segments.emplace(file_id, std::move(seg)).first->second;
}

void SegmentStore::seal_active(Chain& chain) {
  if (!chain.has_active) return;
  Segment& seg = chain.segments.at(chain.active_file_id);
  if (seg.writer) {
    seg.writer->flush();
    seg.writer.reset();
  }
  chain.has_active = false;
}

void SegmentStore::append(const Envelope& envelope) {
  Chain& chain = chains_[envelope.producer];
  Segment& seg = active_segment(chain, envelope.producer);
  net::ByteWriter record;
  append_segment_record(envelope, record);
  write_stream(*seg.writer, record.view(), "segment record");
  chain.index.emplace(
      envelope.sequence,
      RecordLoc{chain.active_file_id,
                seg.bytes + 4 + kEnvelopePrefixBytes,
                envelope.payload.size()});
  seg.sequences.push_back(envelope.sequence);
  seg.max_sequence = std::max(seg.max_sequence, envelope.sequence);
  seg.bytes += record.size();
  seg.payload_bytes += envelope.payload.size();
  chain.payload_bytes += envelope.payload.size();
}

bool SegmentStore::contains(DomainId producer,
                            std::uint64_t sequence) const {
  const auto it = chains_.find(producer);
  return it != chains_.end() && it->second.index.contains(sequence);
}

void SegmentStore::read_payload(const Chain& chain,
                                const RecordLoc& loc) const {
  if (!chain.reader_open || chain.reader_file_id != loc.file_id) {
    if (chain.reader_open) chain.reader.close();
    chain.reader_open = false;
    const auto seg_it = chain.segments.find(loc.file_id);
    if (seg_it == chain.segments.end()) {
      throw std::runtime_error("SegmentStore: dangling record location");
    }
    chain.reader.clear();
    chain.reader.open(seg_it->second.path, std::ios::binary);
    if (!chain.reader) {
      throw std::runtime_error("SegmentStore: cannot open " +
                               seg_it->second.path.string());
    }
    chain.reader_open = true;
    chain.reader_file_id = loc.file_id;
  }
  chain.reader.clear();
  chain.reader.seekg(static_cast<std::streamoff>(loc.payload_offset));
  scratch_.resize(loc.payload_size);
  chain.reader.read(reinterpret_cast<char*>(scratch_.data()),
                    static_cast<std::streamsize>(loc.payload_size));
  if (static_cast<std::size_t>(chain.reader.gcount()) != loc.payload_size) {
    throw std::runtime_error("SegmentStore: short payload read");
  }
}

void SegmentStore::visit_after(
    DomainId producer, std::uint64_t cursor,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  const auto chain_it = chains_.find(producer);
  if (chain_it == chains_.end()) return;
  const Chain& chain = chain_it->second;
  // Same mutation-tolerant walk as the memory backend: re-find the
  // successor BY SEQUENCE after every visit, because the visitor may ack
  // mid-walk and the triggered erase_through() unlinks whole segments —
  // including, legitimately, the one holding the record just served (the
  // payload lives in scratch_ by then, not in the file).
  auto it = chain.index.upper_bound(cursor);
  while (it != chain.index.end()) {
    const std::uint64_t seq = it->first;
    const RecordLoc loc = it->second;  // copy: the node may be erased
    read_payload(chain, loc);
    visit(seq, std::span<const std::byte>(scratch_.data(),
                                          loc.payload_size));
    it = chain.index.upper_bound(seq);
  }
}

std::size_t SegmentStore::count_after(DomainId producer,
                                      std::uint64_t cursor) const {
  const auto it = chains_.find(producer);
  if (it == chains_.end()) return 0;
  return static_cast<std::size_t>(std::distance(
      it->second.index.upper_bound(cursor), it->second.index.end()));
}

void SegmentStore::unlink_segment(Chain& chain, std::uint64_t file_id) {
  Segment& seg = chain.segments.at(file_id);
  if (chain.has_active && chain.active_file_id == file_id) {
    seal_active(chain);
  }
  if (chain.reader_open && chain.reader_file_id == file_id) {
    chain.reader.close();
    chain.reader_open = false;
  }
  for (const std::uint64_t seq : seg.sequences) {
    chain.index.erase(seq);
  }
  chain.erased += seg.sequences.size();
  chain.payload_bytes -= seg.payload_bytes;
  std::filesystem::remove(seg.path);
  chain.segments.erase(file_id);
  ++chain.unlinked;
  ++total_unlinked_;
}

void SegmentStore::erase_through(DomainId producer, std::uint64_t floor) {
  const auto chain_it = chains_.find(producer);
  if (chain_it == chains_.end()) return;
  Chain& chain = chain_it->second;
  // Whole segments are the deletion unit: a file goes only when the floor
  // passed its LAST sequence.  Sub-floor records in surviving segments
  // stay on disk but can never be served again (reads start after a
  // cursor >= floor).
  std::vector<std::uint64_t> doomed;
  for (const auto& [file_id, seg] : chain.segments) {
    if (!seg.sequences.empty() && seg.max_sequence <= floor) {
      doomed.push_back(file_id);
    }
  }
  for (const std::uint64_t file_id : doomed) {
    unlink_segment(chain, file_id);
  }
}

std::vector<std::pair<DomainId, std::uint64_t>> SegmentStore::heads() const {
  std::vector<std::pair<DomainId, std::uint64_t>> out;
  for (const auto& [producer, chain] : chains_) {
    if (!chain.index.empty()) {
      out.emplace_back(producer, chain.index.rbegin()->first);
    }
  }
  return out;
}

StorageStats SegmentStore::stats() const {
  StorageStats out;
  out.segments_unlinked = total_unlinked_;
  for (const auto& [producer, chain] : chains_) {
    out.envelopes += chain.index.size();
    out.payload_bytes += chain.payload_bytes;
    out.erased += chain.erased;
    out.segments_live += chain.segments.size();
    for (const auto& [file_id, seg] : chain.segments) {
      out.bytes_on_disk += seg.bytes;
    }
  }
  return out;
}

StorageStats SegmentStore::producer_stats(DomainId producer) const {
  StorageStats out;
  const auto it = chains_.find(producer);
  if (it == chains_.end()) return out;
  const Chain& chain = it->second;
  out.envelopes = chain.index.size();
  out.payload_bytes = chain.payload_bytes;
  out.erased = chain.erased;
  out.segments_live = chain.segments.size();
  out.segments_unlinked = chain.unlinked;
  for (const auto& [file_id, seg] : chain.segments) {
    out.bytes_on_disk += seg.bytes;
  }
  return out;
}

// --- SegmentStorage (cursor log + EnvelopeStorage glue) -----------------

SegmentStorage::SegmentStorage(SegmentStoreConfig cfg)
    : store_(cfg), snapshot_every_(cfg.cursor_snapshot_every) {}

SegmentStorage::~SegmentStorage() = default;

RecoveredState SegmentStorage::recover() {
  recover_cursor_log();
  RecoveredState state;
  state.producer_heads = store_.heads();
  state.consumers.reserve(consumers_.size());
  for (const auto& [name, record] : consumers_) {
    state.consumers.push_back(record);
  }
  return state;
}

void SegmentStorage::recover_cursor_log() {
  log_path_ = store_.directory() / "cursors.log";
  std::vector<std::byte> data;
  if (std::filesystem::exists(log_path_)) {
    data = read_file_bytes(log_path_);
  }
  std::size_t valid = 0;
  if (data.size() >= kCursorHeaderBytes) {
    net::ByteReader header(data);
    if (header.u32() != kCursorMagic || header.u8() != kCursorVersion) {
      throw net::WireError("cursor log: bad header");
    }
    const std::span<const std::byte> view(data);
    std::size_t offset = kCursorHeaderBytes;
    valid = offset;
    while (offset < data.size()) {
      const std::size_t remaining = data.size() - offset;
      if (remaining < 4) break;  // torn tail
      net::ByteReader len_reader(view.subspan(offset, 4));
      const std::uint32_t len = len_reader.u32();
      if (len == 0 || len > kMaxCursorRecordBytes) break;
      if (remaining < 4 + static_cast<std::size_t>(len) + 4) break;
      const auto body = view.subspan(offset + 4, len);
      net::ByteReader crc_reader(view.subspan(offset + 4 + len, 4));
      if (crc_reader.u32() != crc32(body)) break;
      net::ByteReader r(body);
      const std::uint8_t kind = r.u8();
      const std::uint16_t name_len = r.u16();
      if (r.remaining() != static_cast<std::size_t>(name_len) + 4 + 8) {
        break;  // malformed body: treat as the torn tail
      }
      std::string name(name_len, '\0');
      for (std::uint16_t i = 0; i < name_len; ++i) {
        name[i] = static_cast<char>(r.u8());
      }
      const DomainId producer = r.u32();
      const std::uint64_t sequence = r.u64();
      ConsumerRecord& rec = consumers_[name];
      rec.name = name;
      switch (kind) {
        case kCursorRegister:
          rec.all_producers = true;
          break;
        case kCursorSubscribe:
          if (std::find(rec.subscribed.begin(), rec.subscribed.end(),
                        producer) == rec.subscribed.end()) {
            rec.subscribed.push_back(producer);
          }
          break;
        case kCursorAck: {
          auto it = std::find_if(
              rec.acked.begin(), rec.acked.end(),
              [producer](const auto& p) { return p.first == producer; });
          if (it == rec.acked.end()) {
            rec.acked.emplace_back(producer, sequence);
          } else {
            it->second = std::max(it->second, sequence);
          }
          break;
        }
        default:
          throw net::WireError("cursor log: unknown record kind");
      }
      offset += 4 + len + 4;
      valid = offset;
    }
  }
  if (valid == 0) {
    // Absent, empty, or torn-create log: start fresh.
    log_.open(log_path_, std::ios::binary | std::ios::trunc);
    net::ByteWriter header;
    header.u32(kCursorMagic);
    header.u8(kCursorVersion);
    write_stream(log_, header.view(), "cursor log header");
    log_bytes_ = header.size();
    return;
  }
  if (valid < data.size()) {
    std::filesystem::resize_file(log_path_, valid);  // torn tail
  }
  log_.open(log_path_, std::ios::binary | std::ios::app);
  if (!log_) {
    throw std::runtime_error("SegmentStorage: cannot open cursor log");
  }
  log_bytes_ = valid;
}

void SegmentStorage::append_cursor_record(std::uint8_t kind,
                                          const std::string& name,
                                          DomainId producer,
                                          std::uint64_t sequence) {
  net::ByteWriter body;
  body.u8(kind);
  body.u16(static_cast<std::uint16_t>(name.size()));
  for (const char c : name) body.u8(static_cast<std::uint8_t>(c));
  body.u32(producer);
  body.u64(sequence);
  net::ByteWriter record;
  record.u32(static_cast<std::uint32_t>(body.size()));
  record.bytes(body.view());
  record.u32(crc32(body.view()));
  write_stream(log_, record.view(), "cursor record");
  log_bytes_ += record.size();
  if (++log_records_since_compact_ >= snapshot_every_) {
    compact_cursor_log();
  }
}

void SegmentStorage::compact_cursor_log() {
  net::ByteWriter image;
  image.u32(kCursorMagic);
  image.u8(kCursorVersion);
  const auto add = [&image](std::uint8_t kind, const std::string& name,
                            DomainId producer, std::uint64_t sequence) {
    net::ByteWriter body;
    body.u8(kind);
    body.u16(static_cast<std::uint16_t>(name.size()));
    for (const char c : name) body.u8(static_cast<std::uint8_t>(c));
    body.u32(producer);
    body.u64(sequence);
    image.u32(static_cast<std::uint32_t>(body.size()));
    image.bytes(body.view());
    image.u32(crc32(body.view()));
  };
  for (const auto& [name, rec] : consumers_) {
    if (rec.all_producers) add(kCursorRegister, name, 0, 0);
    for (const DomainId producer : rec.subscribed) {
      add(kCursorSubscribe, name, producer, 0);
    }
    for (const auto& [producer, sequence] : rec.acked) {
      add(kCursorAck, name, producer, sequence);
    }
  }
  log_.close();
  const std::filesystem::path tmp = log_path_.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    write_stream(out, image.view(), "cursor snapshot");
  }
  std::filesystem::rename(tmp, log_path_);
  log_.open(log_path_, std::ios::binary | std::ios::app);
  if (!log_) {
    throw std::runtime_error("SegmentStorage: cannot reopen cursor log");
  }
  log_bytes_ = image.size();
  log_records_since_compact_ = 0;
}

void SegmentStorage::put(Envelope envelope) { store_.append(envelope); }

bool SegmentStorage::contains(DomainId producer,
                              std::uint64_t sequence) const {
  return store_.contains(producer, sequence);
}

void SegmentStorage::visit_after(
    DomainId producer, std::uint64_t cursor,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  store_.visit_after(producer, cursor, visit);
}

std::size_t SegmentStorage::count_after(DomainId producer,
                                        std::uint64_t cursor) const {
  return store_.count_after(producer, cursor);
}

void SegmentStorage::erase_through(DomainId producer, std::uint64_t floor) {
  store_.erase_through(producer, floor);
}

void SegmentStorage::persist_registration(const std::string& name,
                                          bool all_producers) {
  ConsumerRecord& rec = consumers_[name];
  rec.name = name;
  rec.all_producers = rec.all_producers || all_producers;
  append_cursor_record(kCursorRegister, name, 0, 0);
}

void SegmentStorage::persist_subscription(const std::string& name,
                                          DomainId producer) {
  ConsumerRecord& rec = consumers_[name];
  rec.name = name;
  if (std::find(rec.subscribed.begin(), rec.subscribed.end(), producer) ==
      rec.subscribed.end()) {
    rec.subscribed.push_back(producer);
  }
  append_cursor_record(kCursorSubscribe, name, producer, 0);
}

void SegmentStorage::persist_ack(const std::string& name, DomainId producer,
                                 std::uint64_t sequence) {
  ConsumerRecord& rec = consumers_[name];
  rec.name = name;
  auto it = std::find_if(
      rec.acked.begin(), rec.acked.end(),
      [producer](const auto& p) { return p.first == producer; });
  if (it == rec.acked.end()) {
    rec.acked.emplace_back(producer, sequence);
  } else {
    it->second = std::max(it->second, sequence);
  }
  append_cursor_record(kCursorAck, name, producer, sequence);
}

StorageStats SegmentStorage::stats() const {
  StorageStats out = store_.stats();
  out.bytes_on_disk += log_bytes_;
  return out;
}

StorageStats SegmentStorage::producer_stats(DomainId producer) const {
  return store_.producer_stats(producer);
}

std::unique_ptr<EnvelopeStorage> make_segment_storage(SegmentStoreConfig cfg) {
  return std::make_unique<SegmentStorage>(std::move(cfg));
}

}  // namespace vpm::dissem
