// Disk-backed retention for the dissemination service (ISSUE 9): the
// "administrative web-site" of §5 survives a process restart.
//
// Layout: one directory per store, one append-only SEGMENT FILE chain per
// producer.  A segment file is
//
//     +--------+---------+----------+   +-- record ------------------+
//     | magic  | version | producer |   | u32 len | envelope | crc32 |
//     | "VSEG" |  u8 =1  |   u32    |   |         (len bytes)        |
//     +--------+---------+----------+   +----------------------------+
//     |<------- 9-byte header ----->|   repeated until EOF
//
// where `envelope` is the dissem wire encoding (tag 0x21, already
// self-describing) and the CRC covers exactly the envelope bytes.  Records
// append in ARRIVAL order — a reordered transport means sequence ranges of
// neighbouring segments may overlap; every read goes through the in-memory
// per-producer index (sequence -> file/offset) rebuilt at open.
//
// Durability rules:
//   * Recovery-on-open scans each file and TRUNCATES at the first torn or
//     corrupt record (a crashed append leaves a short or CRC-failing
//     tail); everything before the tear is served.  A file shorter than
//     its header is a torn create and is unlinked.  scan_segment() is the
//     one parser — strict mode (hostile input: typed WireError, never an
//     over-read) and recovery mode share every bounds check.
//   * The GC floor is the DELETION UNIT: erase_through(floor) unlinks a
//     segment file only when floor >= its highest sequence.  Sub-floor
//     records inside retained segments stay on disk but are invisible
//     (every read starts after a cursor >= floor).
//   * Writes are flushed per record (process-crash consistency; the
//     reproduction does not fsync — power-loss ordering is out of scope).
//
// SegmentStorage wraps a SegmentStore plus a CURSOR LOG (cursors.log,
// same length+CRC framing) into the EnvelopeStorage interface: consumer
// registrations, subscriptions, and acknowledgements append to the log
// (compacted to a snapshot every cursor_snapshot_every records) and are
// replayed by recover(), so a restarted store resumes every consumer at
// its acked cursor.
#ifndef VPM_DISSEM_SEGMENT_STORE_HPP
#define VPM_DISSEM_SEGMENT_STORE_HPP

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/function_ref.hpp"
#include "dissem/envelope.hpp"
#include "dissem/storage.hpp"
#include "net/wire.hpp"

namespace vpm::dissem {

// --- segment file byte format (exposed for the hostile-input suite) -----

inline constexpr std::uint32_t kSegmentMagic = 0x47455356u;  // "VSEG" LE
inline constexpr std::uint8_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 4 + 1 + 4;
/// Upper bound on one record's envelope encoding: the envelope codec caps
/// payloads at 16 MiB and adds <= 25 framing bytes.  A length field above
/// this is structurally absurd and rejected BEFORE any allocation or read.
inline constexpr std::uint32_t kMaxSegmentRecordBytes =
    16u * 1024u * 1024u + 32u;

/// CRC-32 (IEEE reflected, poly 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data);

void write_segment_header(DomainId producer, net::ByteWriter& out);
void append_segment_record(const Envelope& envelope, net::ByteWriter& out);

struct SegmentRecordRef {
  std::uint64_t sequence = 0;
  std::size_t payload_offset = 0;  ///< absolute offset of payload bytes
  std::size_t payload_size = 0;
  std::size_t record_end = 0;  ///< offset one past this record's CRC
};

struct SegmentScan {
  DomainId producer = 0;
  std::vector<SegmentRecordRef> records;
  /// Bytes of well-formed prefix; == data.size() for a clean file.
  std::size_t valid_bytes = 0;
  bool torn = false;  ///< recovery mode only: trailing damage discarded
};

/// Parse a segment file image.
///
/// strict (recover == false): any damage throws net::WireError — TRANSIENT
/// for clean truncation (the bytes are a prefix of a valid file), FATAL
/// for structural damage (bad magic/version, absurd length, CRC or
/// envelope mismatch).  Never reads past data.size().
///
/// recovery (recover == true): header damage still throws (the file is
/// not a segment), but record-level damage STOPS the scan: valid_bytes
/// marks the keep-prefix for truncation, torn is set.
[[nodiscard]] SegmentScan scan_segment(std::span<const std::byte> data,
                                       bool recover);

// --- the store ----------------------------------------------------------

struct SegmentStoreConfig {
  std::filesystem::path directory;  ///< created if absent
  /// Seal the active segment and roll to a new file once it reaches this
  /// many bytes.  Small segments GC promptly (the floor frees whole
  /// files); large segments amortize per-file overhead.
  std::size_t max_segment_bytes = 64 * 1024;
  /// Compact the cursor log to a snapshot every this many appended
  /// records (SegmentStorage only).
  std::size_t cursor_snapshot_every = 4096;
};

/// Per-producer segment-file chains with an in-memory sequence index.
/// Single-writer discipline: not internally synchronized (FederatedStore
/// serializes access per shard).
class SegmentStore {
 public:
  /// Opens (creating the directory if needed) and recovers: torn tails
  /// truncated, torn creates and empty segments unlinked, index rebuilt.
  explicit SegmentStore(SegmentStoreConfig cfg);

  void append(const Envelope& envelope);
  [[nodiscard]] bool contains(DomainId producer,
                              std::uint64_t sequence) const;
  /// (sequence, payload) strictly after `cursor`, ascending; re-finds the
  /// successor by sequence after each visit (the visitor may ack and
  /// trigger erase_through mid-walk).  The span points into a reused
  /// scratch buffer: valid only for the duration of the visit, visits
  /// must not nest.
  void visit_after(
      DomainId producer, std::uint64_t cursor,
      core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)>
          visit) const;
  [[nodiscard]] std::size_t count_after(DomainId producer,
                                        std::uint64_t cursor) const;
  /// Unlink every segment whose highest sequence is <= floor.
  void erase_through(DomainId producer, std::uint64_t floor);

  /// (producer, highest indexed sequence) per producer with any records.
  [[nodiscard]] std::vector<std::pair<DomainId, std::uint64_t>> heads()
      const;
  [[nodiscard]] StorageStats stats() const;
  [[nodiscard]] StorageStats producer_stats(DomainId producer) const;
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return cfg_.directory;
  }

 private:
  struct RecordLoc {
    std::uint64_t file_id = 0;
    std::size_t payload_offset = 0;
    std::size_t payload_size = 0;
  };
  struct Segment {
    std::filesystem::path path;
    std::vector<std::uint64_t> sequences;  ///< append order
    std::uint64_t max_sequence = 0;
    std::size_t bytes = 0;  ///< file size (header + records)
    std::size_t payload_bytes = 0;
    std::unique_ptr<std::ofstream> writer;  ///< active segment only
  };
  struct Chain {
    std::map<std::uint64_t, Segment> segments;  ///< file_id -> segment
    std::map<std::uint64_t, RecordLoc> index;   ///< sequence -> location
    std::uint64_t next_file_id = 0;
    std::uint64_t active_file_id = 0;
    bool has_active = false;
    std::size_t payload_bytes = 0;
    std::size_t erased = 0;
    std::size_t unlinked = 0;
    // One cached read handle per chain: fetch walks are sequential, so
    // consecutive reads overwhelmingly hit the same file.
    mutable std::ifstream reader;
    mutable std::uint64_t reader_file_id = 0;
    mutable bool reader_open = false;
  };

  Segment& active_segment(Chain& chain, DomainId producer);
  void seal_active(Chain& chain);
  void unlink_segment(Chain& chain, std::uint64_t file_id);
  void read_payload(const Chain& chain, const RecordLoc& loc) const;
  void recover_directory();

  SegmentStoreConfig cfg_;
  std::map<DomainId, Chain> chains_;
  std::size_t total_unlinked_ = 0;
  mutable std::vector<std::byte> scratch_;  ///< visit_after read buffer
};

/// EnvelopeStorage over SegmentStore + a durable cursor log — plug into
/// ReceiptStore for a store that survives restarts.
class SegmentStorage final : public EnvelopeStorage {
 public:
  explicit SegmentStorage(SegmentStoreConfig cfg);
  ~SegmentStorage() override;

  RecoveredState recover() override;
  void put(Envelope envelope) override;
  [[nodiscard]] bool contains(DomainId producer,
                              std::uint64_t sequence) const override;
  void visit_after(
      DomainId producer, std::uint64_t cursor,
      core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)>
          visit) const override;
  [[nodiscard]] std::size_t count_after(DomainId producer,
                                        std::uint64_t cursor) const override;
  void erase_through(DomainId producer, std::uint64_t floor) override;
  void persist_registration(const std::string& name,
                            bool all_producers) override;
  void persist_subscription(const std::string& name,
                            DomainId producer) override;
  void persist_ack(const std::string& name, DomainId producer,
                   std::uint64_t sequence) override;
  [[nodiscard]] StorageStats stats() const override;
  [[nodiscard]] StorageStats producer_stats(DomainId producer)
      const override;

  [[nodiscard]] const SegmentStore& segments() const noexcept {
    return store_;
  }

 private:
  void append_cursor_record(std::uint8_t kind, const std::string& name,
                            DomainId producer, std::uint64_t sequence);
  void compact_cursor_log();
  void recover_cursor_log();

  SegmentStore store_;
  std::size_t snapshot_every_ = 4096;
  std::filesystem::path log_path_;
  std::ofstream log_;
  std::size_t log_bytes_ = 0;
  std::size_t log_records_since_compact_ = 0;
  /// Mirror of durable consumer state, for snapshots and recover().
  std::map<std::string, ConsumerRecord> consumers_;
};

[[nodiscard]] std::unique_ptr<EnvelopeStorage> make_segment_storage(
    SegmentStoreConfig cfg);

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_SEGMENT_STORE_HPP
