// Producer-sharded front over N independent ReceiptStores (ISSUE 9).
//
// The dissemination service outgrows one store the same way the collector
// outgrew one cache (PR 2): partition by key, share nothing.  Every
// producer id routes through the same splitmix64 finalizer discipline as
// collector/sharded_collector::shard_of_key to exactly one shard, which
// owns that producer's envelopes, segment files (each shard gets its own
// `shard-<i>/` subdirectory), cursors, and GC floor.  Cross-shard state is
// nil — a consumer's cursor for producer P lives only on P's shard — so
// shards never deadlock (every operation locks exactly one shard) and
// scale independently.
//
// Concurrency: the forwarding API (ingest / fetch_from / ack / cursor /
// stats / ...) serializes per shard behind a recursive mutex — recursive
// because a fetch_from visitor legitimately acks mid-walk (the FetchClient
// round-boundary pattern), re-entering the same shard from the same
// thread.  Many producers ingesting while many consumers fetch is safe
// and contention is real only when they collide on a shard
// (federated_store_test runs the matrix under TSan).  Single-threaded
// drivers (the federation simulation) may instead take shard_for() and
// talk to the underlying ReceiptStore directly, bypassing the locks.
//
// Restart: construct over the same directory with the SAME shard count —
// the split is by hash, so re-sharding an existing directory would strand
// each producer's history on its old shard.  (Resharding-by-copy is a
// recorded follow-on, not a silent misroute: the constructor refuses a
// directory whose recorded shard count disagrees.)
#ifndef VPM_DISSEM_FEDERATED_STORE_HPP
#define VPM_DISSEM_FEDERATED_STORE_HPP

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/function_ref.hpp"
#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/segment_store.hpp"

namespace vpm::dissem {

struct FederatedStoreConfig {
  std::size_t shards = 1;
  /// Empty: volatile memory backend.  Non-empty: SegmentStorage rooted
  /// here, one `shard-<i>` subdirectory per shard.
  std::filesystem::path directory;
  std::size_t max_segment_bytes = 64 * 1024;
  std::size_t cursor_snapshot_every = 4096;
};

class FederatedStore {
 public:
  explicit FederatedStore(FederatedStoreConfig cfg);

  /// splitmix64-finalizer routing, the sharded-collector discipline.
  [[nodiscard]] static std::size_t shard_of(DomainId producer,
                                            std::size_t shard_count) noexcept {
    std::uint64_t x = producer;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shard_count);
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_index(DomainId producer) const noexcept {
    return shard_of(producer, shards_.size());
  }

  /// Direct, UNLOCKED access to the shard owning `producer` — for
  /// single-threaded drivers (FetchClient binds a ReceiptStore&).  Do not
  /// mix with concurrent use of the locked API.
  [[nodiscard]] ReceiptStore& shard_for(DomainId producer) {
    return *shards_[shard_index(producer)]->store;
  }
  [[nodiscard]] const ReceiptStore& shard_for(DomainId producer) const {
    return *shards_[shard_index(producer)]->store;
  }
  [[nodiscard]] ReceiptStore& shard(std::size_t index) {
    return *shards_[index]->store;
  }

  // --- locked forwarding API (thread-safe) -------------------------------

  void register_producer(DomainId producer, DomainKey key);
  /// Registers on EVERY shard (an all-producer consumer gates GC of
  /// producers on all of them).
  void register_consumer(const std::string& name);
  /// Registers (if new) and subscribes on `producer`'s owning shard only.
  void subscribe(const std::string& name, DomainId producer);
  IngestOutcome ingest(Envelope envelope);
  void fetch_from(const std::string& consumer, DomainId producer,
                  core::FunctionRef<void(std::uint64_t,
                                         std::span<const std::byte>)>
                      visit) const;
  AckOutcome ack(const std::string& consumer, DomainId producer,
                 std::uint64_t sequence);
  [[nodiscard]] std::uint64_t cursor(const std::string& consumer,
                                     DomainId producer) const;
  [[nodiscard]] std::uint64_t gc_floor(DomainId producer) const;
  [[nodiscard]] std::size_t consumer_lag(const std::string& consumer,
                                         DomainId producer) const;
  [[nodiscard]] std::uint64_t last_sequence(DomainId producer) const;
  [[nodiscard]] StorageStats producer_storage_stats(DomainId producer) const;

  // --- aggregates (lock each shard in turn) ------------------------------

  [[nodiscard]] StorageStats storage_stats() const;
  [[nodiscard]] std::size_t accepted_count() const;
  [[nodiscard]] std::size_t rejected_count() const;
  [[nodiscard]] std::size_t stored_envelopes() const;
  [[nodiscard]] std::size_t gc_erased_count() const;

 private:
  struct Shard {
    std::unique_ptr<ReceiptStore> store;
    mutable std::recursive_mutex mu;
  };

  [[nodiscard]] Shard& owner(DomainId producer) const {
    return *shards_[shard_of(producer, shards_.size())];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_FEDERATED_STORE_HPP
