#include "dissem/fetch_client.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/wire.hpp"

namespace vpm::dissem {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

FetchClient::FetchClient(const WireImporter& importer, ReceiptStore& store,
                         Config cfg, RoundHandler on_rounds,
                         GapHandler on_gap)
    : importer_(&importer),
      store_(&store),
      cfg_(std::move(cfg)),
      on_rounds_(std::move(on_rounds)),
      on_gap_(std::move(on_gap)),
      rng_state_(cfg_.seed) {
  if (!on_rounds_ || !on_gap_) {
    throw std::invalid_argument("FetchClient: null handler");
  }
  // Crash-resume: the acked cursor is the only durable consumer state.
  // Everything after it is re-fetched and re-decoded by the fresh
  // session; nothing before it can be served again (at-least-once fetch,
  // exactly-once delivery).
  last_fed_ = store_->cursor(cfg_.consumer, cfg_.producer);
  session_ =
      std::make_unique<WireImporter::Session>(*importer_, buffer_);
}

std::uint64_t FetchClient::next_u64() { return splitmix64(rng_state_); }

void FetchClient::poll() {
  ++stats_.polls;
  if (skip_polls_ > 0) {
    --skip_polls_;
    ++stats_.backoff_skips;
    return;
  }
  run_fetch_pass(/*force_gap=*/false);
}

void FetchClient::finalize() {
  skip_polls_ = 0;
  backoff_failures_ = 0;
  // No more polls are coming: a sequence still inside its patience window
  // is not late, it is gone.  Declare, resync, deliver what closes.
  run_fetch_pass(/*force_gap=*/true);
  if (gap_open_) {
    // The stream ended while still hunting a round mark (or the gap had
    // nothing behind it at all): close the gap over everything consumed.
    for (std::uint64_t key : session_->take_skipped_keys()) {
      gap_.affected_paths.push_back(key);
    }
    std::sort(gap_.affected_paths.begin(), gap_.affected_paths.end());
    gap_.affected_paths.erase(
        std::unique(gap_.affected_paths.begin(), gap_.affected_paths.end()),
        gap_.affected_paths.end());
    ++stats_.gaps_reported;
    on_gap_(std::move(gap_));
    gap_ = core::RoundGap{};
    gap_open_ = false;
    gap_wait_ = 0;
  }
}

void FetchClient::run_fetch_pass(bool force_gap) {
  bool progress = false;
  bool saw_new = false;
  bool stop = false;
  store_->fetch_from(
      cfg_.consumer, cfg_.producer,
      [&](std::uint64_t seq, std::span<const std::byte> payload) {
        if (stop) return;
        if (seq <= last_fed_) {
          // Fed before a crash or a transient retry, never acked: the
          // session already holds its content (or is resyncing past it).
          ++stats_.refetch_skips;
          return;
        }
        saw_new = true;
        if (!session_->resyncing() && seq != last_fed_ + 1) {
          // Missing sequence(s) ahead.  Reordered/delayed envelopes file
          // into the store out of order, so give them `gap_patience_polls`
          // polls to appear before declaring loss.
          if (!force_gap && gap_wait_ < cfg_.gap_patience_polls) {
            ++gap_wait_;
            ++stats_.gap_wait_polls;
            stop = true;
            return;
          }
          begin_gap(last_fed_ + 1, core::RoundGap::Cause::kLost);
          gap_.last_sequence = seq - 1;
          discard_partial_round();
          session_->resync();
        }
        // Captured BEFORE the feed: the envelope whose round mark
        // completes a resync is itself consumed by the skip walk, so it
        // belongs in the gap range — checking resyncing() afterwards
        // would exclude it and let a round the walk swallowed whole pass
        // for delivered.
        const bool was_resyncing = session_->resyncing();
        if (!feed_payload(seq, payload)) {
          stop = true;  // transient: retry this payload next poll
          return;
        }
        last_fed_ = seq;
        progress = true;
        if (gap_open_ && was_resyncing && gap_.last_sequence < seq) {
          gap_.last_sequence = seq;  // the resync walk consumed it
        }
        if (!gap_open_) gap_wait_ = 0;
        close_gap_if_resynced();
        if (session_->at_round_boundary()) deliver_and_ack();
      });
  if (saw_new || progress) {
    backoff_failures_ = 0;
    return;
  }
  // Nothing new at all: capped exponential backoff, jittered over
  // [1, cap] so a fleet of consumers does not thunder back in step.
  ++backoff_failures_;
  const std::uint64_t shift =
      std::min<std::uint64_t>(backoff_failures_ - 1, 20);
  std::uint64_t cap = std::max<std::uint64_t>(cfg_.backoff_initial_polls, 1)
                      << shift;
  cap = std::min(cap, std::max<std::uint64_t>(cfg_.backoff_max_polls, 1));
  skip_polls_ = 1 + next_u64() % cap;
}

bool FetchClient::feed_payload(std::uint64_t sequence,
                               std::span<const std::byte> payload) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      session_->feed(payload);
      ++stats_.envelopes_fed;
      return true;
    } catch (const net::WireError& e) {
      if (e.transient()) {
        // Truncated fetch: the session state is untouched (documented
        // feed() contract) — the identical payload retries next poll.
        ++stats_.transient_retries;
        return false;
      }
      // Corrupt content behind a valid MAC: the producer round it sits in
      // is unrecoverable.  Open (or extend) a gap and resync; the second
      // attempt re-walks this payload in skip mode to find a round mark
      // further in.
      ++stats_.fatal_errors;
      begin_gap(sequence, core::RoundGap::Cause::kCorrupt);
      if (gap_.last_sequence < sequence) gap_.last_sequence = sequence;
      discard_partial_round();
      session_->resync();
    }
  }
  // The skip walk itself threw: the payload's section framing is beyond
  // saving.  Swallow it whole into the gap and stay resyncing.
  session_->resync();
  return true;
}

void FetchClient::begin_gap(std::uint64_t first_missing,
                            core::RoundGap::Cause cause) {
  if (gap_open_) return;  // first cause wins; the range keeps extending
  gap_open_ = true;
  gap_ = core::RoundGap{};
  gap_.producer = cfg_.producer_name;
  gap_.hop = cfg_.hop;
  gap_.first_sequence = first_missing;
  gap_.last_sequence = first_missing;
  gap_.cause = cause;
}

void FetchClient::discard_partial_round() {
  // Whatever the buffer holds belongs to round(s) that will never
  // complete — name their paths in the gap instead of delivering them.
  std::vector<core::IndexedPathDrain> groups = std::move(buffer_).take();
  for (const core::IndexedPathDrain& g : groups) {
    gap_.affected_paths.push_back(importer_->path_at(g.path).path_key());
  }
}

void FetchClient::close_gap_if_resynced() {
  if (!gap_open_ || session_->resyncing()) return;
  for (std::uint64_t key : session_->take_skipped_keys()) {
    gap_.affected_paths.push_back(key);
  }
  std::sort(gap_.affected_paths.begin(), gap_.affected_paths.end());
  gap_.affected_paths.erase(
      std::unique(gap_.affected_paths.begin(), gap_.affected_paths.end()),
      gap_.affected_paths.end());
  ++stats_.gaps_reported;
  on_gap_(std::move(gap_));
  gap_ = core::RoundGap{};
  gap_open_ = false;
  gap_wait_ = 0;
}

void FetchClient::deliver_and_ack() {
  std::vector<core::IndexedPathDrain> groups = std::move(buffer_).take();
  if (!groups.empty()) {
    stats_.groups_delivered += groups.size();
    ++stats_.deliveries;
    on_rounds_(std::move(groups));
  }
  // Ack even a delivery-empty boundary (a bare round mark, or a round
  // fully swallowed by a gap): the cursor must advance past consumed
  // sequences or they are re-fetched forever — the "stuck cursor" the
  // soak asserts against.
  if (last_fed_ > store_->cursor(cfg_.consumer, cfg_.producer)) {
    const AckOutcome out =
        store_->ack(cfg_.consumer, cfg_.producer, last_fed_);
    ++stats_.acks;
    if (!(out == AckResult::kAcked)) ++stats_.ack_rejections;
  }
}

}  // namespace vpm::dissem
