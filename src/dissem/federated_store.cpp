#include "dissem/federated_store.hpp"

#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace vpm::dissem {

FederatedStore::FederatedStore(FederatedStoreConfig cfg) {
  if (cfg.shards == 0) {
    throw std::invalid_argument("FederatedStore: shards must be >= 1");
  }
  const bool durable = !cfg.directory.empty();
  if (durable) {
    std::filesystem::create_directories(cfg.directory);
    // Routing is by hash mod shard count: reopening with a different
    // count would silently strand every producer's history on its old
    // shard.  Refuse instead (resharding-by-copy is a recorded follow-on).
    const std::filesystem::path meta = cfg.directory / "shards.meta";
    if (std::filesystem::exists(meta)) {
      std::ifstream in(meta);
      std::size_t recorded = 0;
      if (!(in >> recorded) || recorded != cfg.shards) {
        throw std::runtime_error(
            "FederatedStore: directory was written with " +
            std::to_string(recorded) + " shards, reopened with " +
            std::to_string(cfg.shards));
      }
    } else {
      std::ofstream out(meta);
      out << cfg.shards << "\n";
      if (!out) {
        throw std::runtime_error("FederatedStore: cannot write " +
                                 meta.string());
      }
    }
  }
  shards_.reserve(cfg.shards);
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (durable) {
      SegmentStoreConfig seg;
      seg.directory = cfg.directory / ("shard-" + std::to_string(i));
      seg.max_segment_bytes = cfg.max_segment_bytes;
      seg.cursor_snapshot_every = cfg.cursor_snapshot_every;
      shard->store =
          std::make_unique<ReceiptStore>(make_segment_storage(std::move(seg)));
    } else {
      shard->store = std::make_unique<ReceiptStore>();
    }
    shards_.push_back(std::move(shard));
  }
}

void FederatedStore::register_producer(DomainId producer, DomainKey key) {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  s.store->register_producer(producer, key);
}

void FederatedStore::register_consumer(const std::string& name) {
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    shard->store->register_consumer(name);
  }
}

void FederatedStore::subscribe(const std::string& name, DomainId producer) {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  s.store->subscribe(name, producer);
}

IngestOutcome FederatedStore::ingest(Envelope envelope) {
  Shard& s = owner(envelope.producer);
  const std::scoped_lock lock(s.mu);
  return s.store->ingest(std::move(envelope));
}

void FederatedStore::fetch_from(
    const std::string& consumer, DomainId producer,
    core::FunctionRef<void(std::uint64_t, std::span<const std::byte>)> visit)
    const {
  Shard& s = owner(producer);
  // Recursive: the visitor may ack() mid-walk, re-entering this shard.
  const std::scoped_lock lock(s.mu);
  s.store->fetch_from(consumer, producer, visit);
}

AckOutcome FederatedStore::ack(const std::string& consumer,
                               DomainId producer, std::uint64_t sequence) {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->ack(consumer, producer, sequence);
}

std::uint64_t FederatedStore::cursor(const std::string& consumer,
                                     DomainId producer) const {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->cursor(consumer, producer);
}

std::uint64_t FederatedStore::gc_floor(DomainId producer) const {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->gc_floor(producer);
}

std::size_t FederatedStore::consumer_lag(const std::string& consumer,
                                         DomainId producer) const {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->consumer_lag(consumer, producer);
}

std::uint64_t FederatedStore::last_sequence(DomainId producer) const {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->last_sequence(producer);
}

StorageStats FederatedStore::producer_storage_stats(DomainId producer) const {
  Shard& s = owner(producer);
  const std::scoped_lock lock(s.mu);
  return s.store->producer_storage_stats(producer);
}

StorageStats FederatedStore::storage_stats() const {
  StorageStats out;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    const StorageStats s = shard->store->storage_stats();
    out.envelopes += s.envelopes;
    out.payload_bytes += s.payload_bytes;
    out.erased += s.erased;
    out.segments_live += s.segments_live;
    out.segments_unlinked += s.segments_unlinked;
    out.bytes_on_disk += s.bytes_on_disk;
  }
  return out;
}

std::size_t FederatedStore::accepted_count() const {
  std::size_t out = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    out += shard->store->accepted_count();
  }
  return out;
}

std::size_t FederatedStore::rejected_count() const {
  std::size_t out = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    out += shard->store->rejected_count();
  }
  return out;
}

std::size_t FederatedStore::stored_envelopes() const {
  std::size_t out = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    out += shard->store->stored_envelopes();
  }
  return out;
}

std::size_t FederatedStore::gc_erased_count() const {
  std::size_t out = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    out += shard->store->gc_erased_count();
  }
  return out;
}

}  // namespace vpm::dissem
