// The "administrative web-site" of Assumption #2: a per-producer store of
// authenticated receipt batches that consumers poll.
//
// Ingest enforces the security contract: a batch is accepted only if its
// envelope verifies under the producer's registered key and its sequence
// is NEW — above the producer's GC floor and not already retained.  The
// floor-based rule gives replay/rollback rejection over an out-of-order
// transport (ISSUE 6): reordered fresh envelopes file into place, an
// envelope replayed while its original is retained dedupes (kDuplicate),
// and one replayed after collection falls at or below the floor
// (kStaleSequence) — collection never erases above the floor, so the three
// cases are exhaustive.  Consumers fetch by producer; payload
// interpretation (receipt batch decoding) stays with the caller, which
// owns the PathId table.
//
// Bounded growth for month-long runs: consumers register by NAME and fetch
// through per-(consumer, producer) cursors — fetch_from() resumes after
// the consumer's last acknowledged sequence, ack() advances the cursor —
// and the store garbage-collects every envelope that ALL gating
// consumers have acknowledged, so resident bytes are bounded by the
// slowest consumer's lag instead of history.  A consumer registered late
// starts at each producer's GC floor (collected envelopes cannot be
// served); with no gating consumers nothing is ever collected (the
// pre-cursor behaviour).
//
// Since ISSUE 9 the store is POLICY over a pluggable RETENTION backend
// (dissem/storage.hpp): the default constructor keeps the historical
// in-memory map, while a SegmentStorage-backed store survives process
// restarts — the constructor replays the backend's durable consumer
// registrations and acknowledgements, recomputes every GC floor, and
// resumes exactly where the crashed process stopped.  Producer keys are
// NOT durable: the operator re-registers them at boot, before consumers
// resume acking (authentication material never lives beside the data it
// authenticates).  Consumers come in two gating flavours:
// register_consumer() gates collection of EVERY producer (the historical
// rule), subscribe() gates only the named producer — the federation fleet
// uses subscriptions so one domain's slow reader does not pin every other
// domain's segments on disk.
#ifndef VPM_DISSEM_RECEIPT_STORE_HPP
#define VPM_DISSEM_RECEIPT_STORE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/function_ref.hpp"
#include "dissem/envelope.hpp"
#include "dissem/storage.hpp"

namespace vpm::dissem {

enum class IngestResult : std::uint8_t {
  kAccepted,
  kUnknownProducer,
  kBadAuthenticator,
  kStaleSequence,  ///< at or below the GC floor: replay or unusable seq 0
  kDuplicate,      ///< already retained — idempotent no-op, not an attack
};

[[nodiscard]] const char* to_string(IngestResult r);

enum class AckResult : std::uint8_t {
  kAcked,             ///< cursor advanced (or idempotent re-ack of it)
  kUnknownConsumer,   ///< consumer name never registered
  kUnknownProducer,   ///< producer has no registered key
  kRegressed,         ///< sequence below the consumer's cursor — rejected
  kAhead,             ///< sequence beyond anything the store served
};

[[nodiscard]] const char* to_string(AckResult r);

/// ingest()'s verdict plus the sequence arithmetic behind it, so retry
/// loops can log something actionable ("got 7, floor is 12") instead of a
/// bare enum.  Compares directly against IngestResult: existing
/// `ingest(...) == IngestResult::kAccepted` call sites keep working.
struct IngestOutcome {
  IngestResult result = IngestResult::kAccepted;
  /// Lowest sequence the store could still accept from this producer
  /// (GC floor + 1) at the time of the call.
  std::uint64_t expected_sequence = 0;
  std::uint64_t got_sequence = 0;  ///< the envelope's sequence
  friend bool operator==(const IngestOutcome& o, IngestResult r) noexcept {
    return o.result == r;
  }
  friend bool operator==(const IngestOutcome&,
                         const IngestOutcome&) = default;
};

/// ack()'s verdict with the expected-vs-got sequences (kRegressed: got <
/// the consumer's effective cursor; kAhead: got > the producer's head).
struct AckOutcome {
  AckResult result = AckResult::kAcked;
  /// kRegressed: the consumer's effective cursor; kAhead: the producer's
  /// last accepted sequence; kAcked: the cursor after the call.
  std::uint64_t expected_sequence = 0;
  std::uint64_t got_sequence = 0;  ///< the sequence passed in
  /// kAcked only: envelopes still retained beyond the consumer's new
  /// cursor — how far behind the head it remains.  Computed AFTER the
  /// ack's garbage collection runs: an ack that advances the GC floor
  /// must report lag against the post-collection store, not against
  /// envelopes the very same call just erased (ISSUE 9 satellite fix;
  /// store_cursor_test pins it against a fresh consumer_lag() call).
  std::size_t consumer_lag = 0;
  friend bool operator==(const AckOutcome& o, AckResult r) noexcept {
    return o.result == r;
  }
  friend bool operator==(const AckOutcome&, const AckOutcome&) = default;
};

class ReceiptStore {
 public:
  /// Volatile store over the historical in-memory retention map.
  ReceiptStore();

  /// Store over an explicit retention backend.  The constructor replays
  /// the backend's durable state (consumer registrations, subscriptions,
  /// acknowledgements, retained-envelope heads) and recomputes every GC
  /// floor — for a SegmentStorage this is crash recovery, including
  /// unlinking segments that were fully acknowledged before the crash.
  explicit ReceiptStore(std::unique_ptr<EnvelopeStorage> storage);

  /// Register (or rotate) a producer's key.  Later envelopes must verify
  /// under the latest key.
  void register_producer(DomainId producer, DomainKey key);

  /// Validate and file an envelope.  Arrival order is NOT assumed: a
  /// verified envelope is accepted at any sequence above the producer's
  /// GC floor that is not already retained (reordered delivery must not
  /// turn into loss — ISSUE 6).  Replay protection is complete without
  /// extra state: collection only ever erases sequences at or below the
  /// floor, so a replayed collected envelope falls at or below the floor
  /// (kStaleSequence) and a replayed retained one is kDuplicate.
  IngestOutcome ingest(Envelope envelope);

  /// All accepted *retained* payloads from `producer`, in sequence order,
  /// as OWNING copies.  (This used to return spans into the stored
  /// envelopes — views whose validity silently depended on the store's
  /// container internals surviving later ingest; the regression suite pins
  /// the owning behaviour.  Streaming consumers that must not copy use
  /// for_each_payload instead.)  With consumer GC active, collected
  /// envelopes are gone — cursor-driven consumers use fetch_from.
  [[nodiscard]] std::vector<std::vector<std::byte>> payloads_from(
      DomainId producer) const;

  /// Visit each retained payload from `producer` in sequence order.  The
  /// span handed to `visit` borrows the stored envelope (or the backend's
  /// read scratch) and is valid ONLY for the duration of the call;
  /// `visit` must not ingest into or otherwise mutate this store.
  /// (Non-owning FunctionRef: this sits on the wire-import hot path, once
  /// per stored chunk.)
  void for_each_payload(
      DomainId producer,
      core::FunctionRef<void(std::span<const std::byte>)> visit) const;

  // --- per-consumer cursors + garbage collection -------------------------

  /// Register a named consumer that gates collection of EVERY producer
  /// (the historical rule).  Idempotent for the same name; upgrades a
  /// subscribe()d consumer to all-producer gating.  Its cursor for each
  /// producer starts at that producer's current GC floor (a late
  /// registrant cannot be served what was already collected).
  void register_consumer(const std::string& name);

  /// Register `name` (if new) and make its acknowledgements gate garbage
  /// collection of `producer` ONLY.  Idempotent; a no-op on a consumer
  /// already register_consumer()'d (it already gates everything).  Any
  /// registered consumer may fetch_from/ack any producer — an
  /// unsubscribed fetch is a non-gating "tap" that cannot hold the
  /// producer's envelopes resident.
  void subscribe(const std::string& name, DomainId producer);

  /// Visit `producer`'s retained payloads with sequence numbers AFTER the
  /// consumer's cursor, in sequence order, as (sequence, payload) pairs.
  /// Fetch does not advance the cursor — re-fetching without ack() serves
  /// the same envelopes again (at-least-once delivery).  `visit` MAY call
  /// back into the store (a cursor consumer acks at round boundaries
  /// mid-walk; the triggered garbage collection is safe because the walk
  /// re-finds its successor by sequence, never through a possibly-erased
  /// node), but the payload span borrows backend storage: consume it
  /// BEFORE any ack that could collect it.  Throws std::invalid_argument
  /// for an unregistered consumer; an unknown producer visits nothing.
  void fetch_from(const std::string& consumer, DomainId producer,
                  core::FunctionRef<void(std::uint64_t,
                                         std::span<const std::byte>)>
                      visit) const;

  /// Acknowledge every sequence of `producer` up to and including
  /// `sequence` for `consumer`.  Re-acking the current cursor is an
  /// idempotent kAcked; a sequence below the cursor is kRegressed and a
  /// sequence beyond the producer's last accepted envelope is kAhead —
  /// both rejected without moving the cursor.  A successful ack runs
  /// garbage collection for the producer (envelopes every gating
  /// consumer has acknowledged are erased) and reports the consumer's
  /// post-collection lag.
  AckOutcome ack(const std::string& consumer, DomainId producer,
                 std::uint64_t sequence);

  /// The consumer's effective cursor for `producer` (max of its explicit
  /// acks and the producer's GC floor).  Throws std::invalid_argument for
  /// an unregistered consumer.
  [[nodiscard]] std::uint64_t cursor(const std::string& consumer,
                                     DomainId producer) const;

  /// Highest sequence of `producer` collected so far (0 before any GC).
  [[nodiscard]] std::uint64_t gc_floor(DomainId producer) const;

  /// Envelopes of `producer` retained beyond the consumer's cursor — how
  /// far behind the head this consumer is, in envelopes it could fetch
  /// right now.  0 means fully caught up.  Throws std::invalid_argument
  /// for an unregistered consumer; an unknown producer reads as 0.
  [[nodiscard]] std::size_t consumer_lag(const std::string& consumer,
                                         DomainId producer) const;

  // --- accounting ---------------------------------------------------------

  [[nodiscard]] std::size_t accepted_count() const noexcept {
    return accepted_;
  }
  [[nodiscard]] std::size_t rejected_count() const noexcept {
    return rejected_;
  }
  /// Envelopes currently retained, across producers.
  [[nodiscard]] std::size_t stored_envelopes() const {
    return storage_->stats().envelopes;
  }
  /// Payload bytes currently retained — the resident-memory figure the
  /// churn-soak plateau assertion reads.
  [[nodiscard]] std::size_t stored_payload_bytes() const {
    return storage_->stats().payload_bytes;
  }
  /// Envelopes garbage-collected over the store's lifetime.
  [[nodiscard]] std::size_t gc_erased_count() const {
    return storage_->stats().erased;
  }
  [[nodiscard]] std::size_t consumer_count() const noexcept {
    return cursors_.size();
  }
  /// Retention-backend accounting (segment files, disk bytes; zeros for
  /// the memory backend) — the overhead_report dissemination table.
  [[nodiscard]] StorageStats storage_stats() const {
    return storage_->stats();
  }
  [[nodiscard]] StorageStats producer_storage_stats(DomainId producer) const {
    return storage_->producer_stats(producer);
  }
  /// Last accepted (or recovered) sequence of `producer`; 0 if none.
  [[nodiscard]] std::uint64_t last_sequence(DomainId producer) const {
    const auto it = last_sequence_.find(producer);
    return it == last_sequence_.end() ? 0 : it->second;
  }

 private:
  struct Consumer {
    bool all_producers = false;
    std::set<DomainId> subscribed;
    /// producer -> last acknowledged sequence.
    std::unordered_map<DomainId, std::uint64_t> acked;
    [[nodiscard]] bool gates(DomainId producer) const {
      return all_producers || subscribed.contains(producer);
    }
  };

  /// Erase `producer`'s envelopes every gating consumer has acked.
  void collect_garbage(DomainId producer);
  /// Record (and persist) the GC floor as a new gating consumer's initial
  /// ack so crash recovery, which recomputes floors from acks, cannot
  /// rewind a floor below where a late joiner came in.
  void baseline_at_floor(Consumer& slot, const std::string& name,
                         DomainId producer, std::uint64_t floor);
  [[nodiscard]] std::uint64_t effective_cursor(const Consumer& consumer,
                                               DomainId producer) const;

  std::unique_ptr<EnvelopeStorage> storage_;
  std::unordered_map<DomainId, DomainKey> keys_;
  std::unordered_map<DomainId, std::uint64_t> last_sequence_;
  std::map<std::string, Consumer> cursors_;
  std::unordered_map<DomainId, std::uint64_t> gc_floor_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_RECEIPT_STORE_HPP
