// The "administrative web-site" of Assumption #2: a per-producer store of
// authenticated receipt batches that consumers poll.
//
// Ingest enforces the security contract: a batch is accepted only if its
// envelope verifies under the producer's registered key and its sequence
// number advances (replay/rollback rejection).  Consumers fetch by
// producer; payload interpretation (receipt batch decoding) stays with the
// caller, which owns the PathId table.
#ifndef VPM_DISSEM_RECEIPT_STORE_HPP
#define VPM_DISSEM_RECEIPT_STORE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "dissem/envelope.hpp"

namespace vpm::dissem {

enum class IngestResult : std::uint8_t {
  kAccepted,
  kUnknownProducer,
  kBadAuthenticator,
  kStaleSequence,
};

[[nodiscard]] const char* to_string(IngestResult r);

class ReceiptStore {
 public:
  /// Register (or rotate) a producer's key.  Later envelopes must verify
  /// under the latest key.
  void register_producer(DomainId producer, DomainKey key);

  /// Validate and file an envelope.
  IngestResult ingest(Envelope envelope);

  /// All accepted payloads from `producer`, in sequence order, as OWNING
  /// copies.  (This used to return spans into the stored envelopes — views
  /// whose validity silently depended on the store's container internals
  /// surviving later ingest; the regression suite pins the owning
  /// behaviour.  Streaming consumers that must not copy use
  /// for_each_payload instead.)
  [[nodiscard]] std::vector<std::vector<std::byte>> payloads_from(
      DomainId producer) const;

  /// Visit each accepted payload from `producer` in sequence order.  The
  /// span handed to `visit` borrows the stored envelope and is valid ONLY
  /// for the duration of the call; `visit` must not ingest into or
  /// otherwise mutate this store.
  void for_each_payload(
      DomainId producer,
      const std::function<void(std::span<const std::byte>)>& visit) const;

  [[nodiscard]] std::size_t accepted_count() const noexcept {
    return accepted_;
  }
  [[nodiscard]] std::size_t rejected_count() const noexcept {
    return rejected_;
  }

 private:
  std::unordered_map<DomainId, DomainKey> keys_;
  std::unordered_map<DomainId, std::uint64_t> last_sequence_;
  std::unordered_map<DomainId, std::map<std::uint64_t, Envelope>> stored_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_RECEIPT_STORE_HPP
