// The "administrative web-site" of Assumption #2: a per-producer store of
// authenticated receipt batches that consumers poll.
//
// Ingest enforces the security contract: a batch is accepted only if its
// envelope verifies under the producer's registered key and its sequence
// number advances (replay/rollback rejection).  Consumers fetch by
// producer; payload interpretation (receipt batch decoding) stays with the
// caller, which owns the PathId table.
#ifndef VPM_DISSEM_RECEIPT_STORE_HPP
#define VPM_DISSEM_RECEIPT_STORE_HPP

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "dissem/envelope.hpp"

namespace vpm::dissem {

enum class IngestResult : std::uint8_t {
  kAccepted,
  kUnknownProducer,
  kBadAuthenticator,
  kStaleSequence,
};

[[nodiscard]] const char* to_string(IngestResult r);

class ReceiptStore {
 public:
  /// Register (or rotate) a producer's key.  Later envelopes must verify
  /// under the latest key.
  void register_producer(DomainId producer, DomainKey key);

  /// Validate and file an envelope.
  IngestResult ingest(Envelope envelope);

  /// All accepted payloads from `producer`, in sequence order.
  [[nodiscard]] std::vector<std::span<const std::byte>> payloads_from(
      DomainId producer) const;

  [[nodiscard]] std::size_t accepted_count() const noexcept {
    return accepted_;
  }
  [[nodiscard]] std::size_t rejected_count() const noexcept {
    return rejected_;
  }

 private:
  std::unordered_map<DomainId, DomainKey> keys_;
  std::unordered_map<DomainId, std::uint64_t> last_sequence_;
  std::unordered_map<DomainId, std::map<std::uint64_t, Envelope>> stored_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_RECEIPT_STORE_HPP
