#include "dissem/wire_exporter.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/receipt_batch.hpp"

namespace vpm::dissem {
namespace {

/// The 3-byte microsecond offset range of one receipt_batch epoch.
constexpr std::int64_t kMaxEpochSpanNs = 0xFFFFFFll * 1000;

bool fits_epoch(net::Timestamp t, net::Timestamp epoch) noexcept {
  const std::int64_t ns = (t - epoch).nanoseconds();
  return ns >= 0 && ns <= kMaxEpochSpanNs;
}

}  // namespace

WireExporter::WireExporter(Config cfg, EnvelopeConsumer consumer)
    : cfg_(cfg), consumer_(std::move(consumer)), sequence_(cfg.first_sequence) {
  if (!consumer_) {
    throw std::invalid_argument("WireExporter: null envelope consumer");
  }
  if (cfg_.max_chunk_bytes == 0) {
    throw std::invalid_argument("WireExporter: zero max_chunk_bytes");
  }
  if (cfg_.first_sequence == 0) {
    // Sequence 0 is below every store cursor's starting floor: such an
    // envelope could never be served to or acked by a cursor consumer.
    throw std::invalid_argument("WireExporter: first_sequence must be >= 1");
  }
}

void WireExporter::begin_path(std::size_t, const net::PathId&) {
  if (finished_) {
    throw std::logic_error("WireExporter: drain after finish()");
  }
  if (in_path_) {
    throw std::logic_error("WireExporter: begin_path without end_path");
  }
  in_path_ = true;
  ++stats_.paths;
}

void WireExporter::on_samples(core::SampleReceipt samples) {
  if (!in_path_) {
    throw std::logic_error("WireExporter: on_samples outside a path");
  }
  stats_.sample_records += samples.samples.size();
  const std::uint64_t key = samples.path.path_key();

  // Split at sampling-round boundaries so every sub-batch both ends with
  // its marker (the positional marker encoding) and spans at most one
  // epoch range.  `begin` is the first record of the current sub-batch,
  // `round_start` the first record of the current (possibly open) round.
  const std::vector<core::SampleRecord>& recs = samples.samples;
  core::SampleReceipt part;
  part.path = samples.path;
  part.sample_threshold = samples.sample_threshold;
  part.marker_threshold = samples.marker_threshold;

  std::size_t begin = 0;
  std::size_t round_start = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (!fits_epoch(recs[i].time, recs[begin].time)) {
      if (round_start == begin) {
        throw std::invalid_argument(
            "WireExporter: one sampling round spans more than the batch "
            "epoch range; drain more often");
      }
      part.samples.assign(recs.begin() + static_cast<std::ptrdiff_t>(begin),
                          recs.begin() +
                              static_cast<std::ptrdiff_t>(round_start));
      net::ByteWriter batch;
      core::encode_sample_batch(part, batch);
      append_section(kSampleSectionKind, key, batch);
      ++stats_.sample_batches;
      ++stats_.epoch_splits;
      begin = round_start;
      if (!fits_epoch(recs[i].time, recs[begin].time)) {
        throw std::invalid_argument(
            "WireExporter: one sampling round spans more than the batch "
            "epoch range; drain more often");
      }
    }
    if (recs[i].is_marker) round_start = i + 1;
  }
  // The trailing sub-batch — always emitted, even when the whole receipt
  // is empty (an idle path still discloses its thresholds, and the
  // importer reconstructs the exact drain).  encode_sample_batch rejects
  // a trailing partial round, exactly as it would for a direct encode.
  // No split (the common reporting cadence): encode the receipt as-is
  // instead of copying every record into the scratch sub-receipt.
  net::ByteWriter batch;
  if (begin == 0) {
    core::encode_sample_batch(samples, batch);
  } else {
    part.samples.assign(recs.begin() + static_cast<std::ptrdiff_t>(begin),
                        recs.end());
    core::encode_sample_batch(part, batch);
  }
  append_section(kSampleSectionKind, key, batch);
  ++stats_.sample_batches;
}

void WireExporter::on_aggregate(core::AggregateReceipt aggregate) {
  if (!in_path_) {
    throw std::logic_error("WireExporter: on_aggregate outside a path");
  }
  ++stats_.aggregate_receipts;
  if (!pending_aggregates_.empty()) {
    const net::Timestamp epoch = pending_aggregates_.front().opened_at;
    if (!fits_epoch(aggregate.opened_at, epoch) ||
        !fits_epoch(aggregate.closed_at, epoch)) {
      flush_pending_aggregates();
      ++stats_.epoch_splits;
    }
  }
  pending_aggregates_.push_back(std::move(aggregate));
}

void WireExporter::end_path() {
  if (!in_path_) {
    throw std::logic_error("WireExporter: end_path without begin_path");
  }
  flush_pending_aggregates();
  in_path_ = false;
}

void WireExporter::flush_pending_aggregates() {
  if (pending_aggregates_.empty()) return;
  net::ByteWriter batch;
  core::encode_aggregate_batch(pending_aggregates_, batch);
  append_section(kAggregateSectionKind,
                 pending_aggregates_.front().path.path_key(), batch);
  ++stats_.aggregate_batches;
  pending_aggregates_.clear();
}

void WireExporter::end_round() {
  if (finished_) {
    throw std::logic_error("WireExporter: end_round() after finish()");
  }
  if (in_path_) {
    throw std::logic_error("WireExporter: end_round() inside a path");
  }
  if (at_round_boundary_) return;
  append_section(kRoundMarkKind, 0, net::ByteWriter{});
  at_round_boundary_ = true;
}

void WireExporter::append_section(std::uint8_t kind, std::uint64_t path_key,
                                  const net::ByteWriter& batch) {
  const std::size_t section_bytes = kSectionHeaderBytes + batch.size();
  if (section_count_ > 0 &&
      kChunkHeaderBytes + sections_.size() + section_bytes >
          cfg_.max_chunk_bytes) {
    seal_chunk();
  }
  if (kChunkHeaderBytes + section_bytes > cfg_.max_chunk_bytes) {
    ++stats_.oversized_sections;
  }
  sections_.u8(kind);
  sections_.u64(path_key);
  sections_.u32(static_cast<std::uint32_t>(batch.size()));
  sections_.bytes(batch.view());
  ++section_count_;
  if (kind != kRoundMarkKind) at_round_boundary_ = false;
  stats_.peak_buffer_bytes = std::max(stats_.peak_buffer_bytes,
                                      kChunkHeaderBytes + sections_.size());
}

void WireExporter::seal_chunk() {
  if (section_count_ == 0) return;
  net::ByteWriter payload;
  payload.u8(kChunkTag);
  payload.u32(section_count_);
  payload.bytes(sections_.view());
  const std::size_t payload_size = payload.size();
  Envelope env = seal(cfg_.producer, sequence_++, std::move(payload).take(),
                      cfg_.key);
  ++stats_.chunks;
  stats_.payload_bytes += payload_size;
  stats_.envelope_bytes += payload_size + kEnvelopeOverheadBytes;
  sections_ = net::ByteWriter{};
  section_count_ = 0;
  consumer_(std::move(env));
}

void WireExporter::flush() {
  if (finished_) {
    throw std::logic_error("WireExporter: flush() after finish()");
  }
  if (in_path_) {
    throw std::logic_error("WireExporter: flush() inside a path");
  }
  seal_chunk();
}

void WireExporter::finish() {
  if (finished_) return;
  if (in_path_) {
    throw std::logic_error("WireExporter: finish() inside a path");
  }
  // Close the stream's last round, so a successor exporter continuing
  // this envelope sequence (first_sequence = next_sequence()) starts a
  // recognisable new round whatever paths it ships.
  end_round();
  seal_chunk();
  finished_ = true;
}

}  // namespace vpm::dissem
