// The fault-tolerant consumer loop of receipt dissemination (ISSUE 6).
//
// PR 5's cursor-consumer pattern (fetch_from -> Session::feed -> ack) was
// written for a perfect transport: one missing envelope stalls it, one
// corrupt payload poisons the session for good, and acking mid-round means
// a crash loses the half-fed round twice.  FetchClient is the production
// loop that survives all of it:
//
//   * poll()-driven with capped exponential backoff + seeded jitter on
//     empty polls — a quiet producer costs O(log) polls, not one per tick;
//   * feeds the Session only CONTIGUOUS sequences; a missing sequence gets
//     `gap_patience_polls` polls to fill in (the store files reordered and
//     delayed arrivals into place), and only then becomes a typed
//     core::RoundGap — resynchronized at the next round mark, reported to
//     the gap handler, never silently dropped;
//   * payloads that fail decode FATALLY (corrupt content behind a valid
//     MAC) open a kCorrupt gap and resync the same way; TRANSIENT errors
//     (truncated fetch) leave every cursor in place and retry next poll;
//   * delivers decoded path-drain groups to the round handler ONLY when
//     the stream sits at a round boundary, and acks exactly then — so a
//     consumer killed between polls restarts from its last acked sequence
//     (fresh FetchClient, same consumer name) and re-derives the identical
//     stream: at-least-once fetch, exactly-once delivery.
//
// The scenario soak (sim/fault_scenario) drives fleets of these against
// FaultyTransport and pins: delivered rounds byte-identical to a
// fault-free run, reported gaps exactly the transport's induced losses.
#ifndef VPM_DISSEM_FETCH_CLIENT_HPP
#define VPM_DISSEM_FETCH_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/receipt_sink.hpp"
#include "core/verifier.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_importer.hpp"

namespace vpm::dissem {

class FetchClient {
 public:
  struct Config {
    std::string consumer;     ///< registered ReceiptStore consumer name
    DomainId producer = 0;    ///< producer stream this client drains
    std::string producer_name;      ///< stamped into RoundGap.producer
    net::HopId hop = net::kNoHop;   ///< stamped into RoundGap.hop
    /// Backoff (in polls) after a poll that saw nothing new: doubles from
    /// `backoff_initial_polls` up to `backoff_max_polls`, with the actual
    /// skip drawn uniformly from [1, current cap] (seeded jitter).
    std::uint64_t backoff_initial_polls = 1;
    std::uint64_t backoff_max_polls = 8;
    /// Polls a missing sequence may stay missing before it is declared
    /// lost.  Set strictly above the transport's worst-case reorder/delay
    /// (in polls) and reordering never degrades to loss.
    std::uint64_t gap_patience_polls = 3;
    std::uint64_t seed = 1;  ///< jitter RNG seed
  };

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t backoff_skips = 0;   ///< polls skipped inside backoff
    std::uint64_t envelopes_fed = 0;
    std::uint64_t refetch_skips = 0;   ///< fed-but-unacked seen again
    std::uint64_t deliveries = 0;      ///< round-boundary handoffs
    std::uint64_t groups_delivered = 0;
    std::uint64_t gaps_reported = 0;
    std::uint64_t transient_retries = 0;
    std::uint64_t fatal_errors = 0;
    std::uint64_t acks = 0;
    std::uint64_t ack_rejections = 0;  ///< non-kAcked outcomes (bug tell)
    std::uint64_t gap_wait_polls = 0;  ///< polls spent inside patience
  };

  /// One complete batch of decoded per-path drain groups ending exactly
  /// at a round boundary (one or more producer reporting rounds).
  using RoundHandler =
      std::function<void(std::vector<core::IndexedPathDrain>&&)>;
  using GapHandler = std::function<void(core::RoundGap&&)>;

  /// The client resumes from the consumer's current store cursor — which
  /// is what makes construction double as CRASH-RESTART: kill a client,
  /// build a new one with the same consumer name, and it re-fetches
  /// everything fed but not yet acked (the store kept it: unacked
  /// envelopes are never collected) and re-delivers with zero divergence.
  /// The consumer must already be registered; importer and store must
  /// outlive the client.  Throws std::invalid_argument on null handlers.
  FetchClient(const WireImporter& importer, ReceiptStore& store, Config cfg,
              RoundHandler on_rounds, GapHandler on_gap);

  /// One consumer wake-up: fetch whatever the cursor has not covered,
  /// feed contiguous payloads, deliver + ack at round boundaries, manage
  /// gap patience and backoff.  Call once per transport tick.
  void poll();

  /// End-of-stream: force-declare any gap still inside its patience
  /// window (nothing after it is coming), resync past it, and deliver
  /// whatever closes.  The stream head cannot be known to have been
  /// dropped, so tail losses need one clean producer round behind them to
  /// surface — the scenario's closing round.
  void finalize();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Last sequence fed into the session (>= the acked cursor).
  [[nodiscard]] std::uint64_t last_fed() const noexcept { return last_fed_; }
  [[nodiscard]] bool gap_open() const noexcept { return gap_open_; }

 private:
  void run_fetch_pass(bool force_gap);
  /// True when the payload was consumed (decoded or skipped); false when
  /// it must be retried next poll (transient error or gap patience).
  bool feed_payload(std::uint64_t sequence,
                    std::span<const std::byte> payload);
  void begin_gap(std::uint64_t first_missing, core::RoundGap::Cause cause);
  void discard_partial_round();
  void close_gap_if_resynced();
  void deliver_and_ack();
  [[nodiscard]] std::uint64_t next_u64();

  const WireImporter* importer_;
  ReceiptStore* store_;
  Config cfg_;
  RoundHandler on_rounds_;
  GapHandler on_gap_;

  core::VectorSink buffer_;  ///< groups of the in-progress round(s)
  std::unique_ptr<WireImporter::Session> session_;
  Stats stats_;
  std::uint64_t last_fed_ = 0;
  std::uint64_t rng_state_;

  // Backoff.
  std::uint64_t backoff_failures_ = 0;
  std::uint64_t skip_polls_ = 0;

  // Gap state.
  bool gap_open_ = false;
  std::uint64_t gap_wait_ = 0;  ///< patience polls consumed so far
  core::RoundGap gap_;
};

}  // namespace vpm::dissem

#endif  // VPM_DISSEM_FETCH_CLIENT_HPP
