// A Click-style software-router pipeline (the paper's proof-of-concept ran
// the VPM modules as Click elements on a Nehalem server, §7.1).
//
// Substitution note (DESIGN.md §2): we cannot reproduce the 8-core server
// with real NICs; what the paper measured is that the VPM data-plane adds
// no throughput penalty because the box is I/O-bound.  We measure the
// complementary number: the CPU cost per packet of the forwarding path
// with and without the VPM element, which bounds the rate one core
// sustains.
#ifndef VPM_COLLECTOR_PIPELINE_HPP
#define VPM_COLLECTOR_PIPELINE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/sharded_collector.hpp"
#include "net/lpm.hpp"
#include "net/packet.hpp"
#include "net/prefix.hpp"
#include "net/time.hpp"

namespace vpm::collector {

/// A forwarding element; returns false to drop the packet.
class Element {
 public:
  virtual ~Element() = default;
  virtual bool process(const net::Packet& p, net::Timestamp when) = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Control-plane report hook: stream whatever receipts this element has
  /// accumulated into `sink` (the processor module's periodic egress).
  /// Default: no receipts.  Path indices restart per element, so a sink
  /// that cares about indices should report one element at a time.
  virtual void report(core::ReceiptSink& sink, bool flush_open = false) {
    (void)sink;
    (void)flush_open;
  }
};

/// Header sanity checks (Click's CheckIPHeader analogue).
class CheckHeaderElement final : public Element {
 public:
  bool process(const net::Packet& p, net::Timestamp when) override;
  [[nodiscard]] std::string name() const override { return "CheckHeader"; }
  [[nodiscard]] std::uint64_t bad_packets() const noexcept { return bad_; }

 private:
  std::uint64_t bad_ = 0;
};

/// Longest-prefix-match route lookup over a static table (RadixIPLookup
/// analogue, backed by the net::LpmTable binary trie).
class RouteLookupElement final : public Element {
 public:
  struct Route {
    net::Prefix prefix;
    std::uint32_t next_hop_index = 0;
  };
  /// Throws std::invalid_argument on an empty table.
  explicit RouteLookupElement(std::vector<Route> routes);

  bool process(const net::Packet& p, net::Timestamp when) override;
  [[nodiscard]] std::string name() const override { return "RouteLookup"; }
  [[nodiscard]] std::uint64_t no_route_packets() const noexcept {
    return no_route_;
  }
  /// Last matched next hop (sink for the lookup result).
  [[nodiscard]] std::uint32_t last_next_hop() const noexcept {
    return last_next_hop_;
  }

  /// A default table with `n` random /16-ish routes plus a default route.
  [[nodiscard]] static std::vector<Route> synthetic_table(std::size_t n,
                                                          std::uint64_t seed);

 private:
  net::LpmTable table_;
  std::uint64_t no_route_ = 0;
  std::uint32_t last_next_hop_ = 0;
};

/// The VPM collector as a pipeline element.
class VpmElement final : public Element {
 public:
  VpmElement(MonitoringCache::Config cfg,
             std::span<const net::PrefixPair> paths)
      : cache_(cfg, paths) {}

  bool process(const net::Packet& p, net::Timestamp when) override {
    cache_.observe(p, when);
    return true;
  }
  [[nodiscard]] std::string name() const override { return "VpmCollector"; }
  void report(core::ReceiptSink& sink, bool flush_open = false) override {
    cache_.drain_all(sink, flush_open);
  }
  /// Batch callers go through cache().observe_batch() directly — that is
  /// a cache-level entry and does not traverse the other elements.
  [[nodiscard]] MonitoringCache& cache() noexcept { return cache_; }

 private:
  MonitoringCache cache_;
};

/// The sharded VPM collector as a pipeline element (synchronous mode: the
/// forwarding thread routes each packet to its shard's cache inline, so a
/// one-box pipeline still works; a multi-core deployment drives the
/// collector's threaded ingest via collector().start()/feed() instead of
/// pushing packets through Element::process).
class ShardedVpmElement final : public Element {
 public:
  ShardedVpmElement(ShardedCollector::Config cfg,
                    std::span<const net::PrefixPair> paths)
      : collector_(cfg, paths) {}

  bool process(const net::Packet& p, net::Timestamp when) override {
    collector_.observe(p, when);
    return true;
  }
  [[nodiscard]] std::string name() const override {
    return "ShardedVpmCollector";
  }
  void report(core::ReceiptSink& sink, bool flush_open = false) override {
    collector_.drain(sink, flush_open);
  }
  [[nodiscard]] ShardedCollector& collector() noexcept { return collector_; }

 private:
  ShardedCollector collector_;
};

/// A chain of elements plus counters.
class Pipeline {
 public:
  void append(std::unique_ptr<Element> element) {
    elements_.push_back(std::move(element));
  }

  /// Push one packet through; returns true if it survived all elements.
  bool process(const net::Packet& p, net::Timestamp when) {
    for (const auto& e : elements_) {
      if (!e->process(p, when)) {
        ++dropped_;
        return false;
      }
    }
    ++forwarded_;
    return true;
  }

  /// Stream every element's accumulated receipts into `sink`, in pipeline
  /// order (the box's whole control-plane egress in one call).
  void report(core::ReceiptSink& sink, bool flush_open = false) {
    for (const auto& e : elements_) e->report(sink, flush_open);
  }

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t element_count() const noexcept {
    return elements_.size();
  }

 private:
  std::vector<std::unique_ptr<Element>> elements_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_PIPELINE_HPP
