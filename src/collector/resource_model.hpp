// Closed-form resource accounting for Section 7.1's overhead claims.
//
// Every function here reproduces one back-of-the-envelope computation from
// the paper, parameterised the same way, so the overhead bench can print
// paper-value vs model-value side by side.  Constants come from the
// implemented wire/record formats, not from the paper's text.
#ifndef VPM_COLLECTOR_RESOURCE_MODEL_HPP
#define VPM_COLLECTOR_RESOURCE_MODEL_HPP

#include <cstddef>

#include "net/time.hpp"

namespace vpm::collector {

/// Monitoring-cache SRAM for `active_paths` concurrently active
/// origin-prefix pairs (paper: 100,000 paths -> 2 MB).
[[nodiscard]] std::size_t monitoring_cache_bytes(std::size_t active_paths);

/// Temp packet buffer for one interface direction: every packet observed
/// within the reorder window must be remembered (2J, since AggTrans spans
/// J on each side of a cut).  Paper: OC-192, 400 B packets, J = 10 ms ->
/// 436 KB; worst-case 64 B packets -> 2.8 MB.
[[nodiscard]] std::size_t temp_buffer_bytes(double packets_per_second,
                                            net::Duration j_window);

/// Packets per second of a link at `bits_per_second` carrying
/// `avg_packet_bytes` packets.
[[nodiscard]] double link_pps(double bits_per_second, double avg_packet_bytes);

struct BandwidthParams {
  std::size_t path_hops = 20;        ///< paper: "10-domain path" (2 HOPs each)
  double packets_per_aggregate = 1000.0;
  double sample_rate = 0.01;
  double avg_packet_bytes = 400.0;
  /// AggTrans ids per aggregate receipt (0 = basic §6.2 receipts, which is
  /// what the paper's 0.2 B/packet arithmetic assumes).
  double trans_ids_per_aggregate = 0.0;
  /// Amortised batch header bytes per record (path key + epoch etc. spread
  /// over a 1 s reporting period); small for busy paths.
  double batch_header_bytes = 29.0;
  double records_per_batch = 1000.0;
};

struct BandwidthOverhead {
  double bytes_per_packet_per_hop = 0.0;
  double bytes_per_packet_path = 0.0;  ///< summed over all HOPs
  double fraction_of_traffic = 0.0;    ///< path receipt bytes / traffic bytes
};

/// Receipt-dissemination bandwidth for one path (§7.1 "Bandwidth").
[[nodiscard]] BandwidthOverhead bandwidth_overhead(const BandwidthParams& p);

/// §7.1 processing claim, per packet.
struct PerPacketOps {
  int memory_accesses = 3;
  int hash_computations = 1;
  int timestamp_reads = 1;
  /// Extra amortised accesses per packet from the marker sweep (each
  /// buffered packet is touched once when its marker arrives).
  double sweep_accesses = 1.0;
};
[[nodiscard]] constexpr PerPacketOps per_packet_ops() { return {}; }

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_RESOURCE_MODEL_HPP
