#include "collector/monitoring_cache.hpp"

#include <bit>
#include <stdexcept>

namespace vpm::collector {

PathClassifier::PathClassifier(std::span<const net::PrefixPair> paths) {
  if (paths.empty()) {
    throw std::invalid_argument("PathClassifier: no paths");
  }
  if (paths.size() >= kEmpty) {
    throw std::invalid_argument("PathClassifier: too many paths");
  }
  const std::uint8_t src_len = paths.front().source.length();
  const std::uint8_t dst_len = paths.front().destination.length();
  src_mask_ = paths.front().source.mask();
  dst_mask_ = paths.front().destination.mask();
  paths_ = paths.size();

  // Size the table once: smallest power of two holding the paths at load
  // factor <= 0.5, so probe chains stay short and insertion never rehashes.
  const std::size_t slots = std::bit_ceil(paths.size() * 2);
  slots_.resize(slots);
  mask_ = slots - 1;
  shift_ = static_cast<std::uint32_t>(64 - std::bit_width(mask_));

  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].source.length() != src_len ||
        paths[i].destination.length() != dst_len) {
      throw std::invalid_argument(
          "PathClassifier requires uniform prefix lengths");
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(paths[i].source.network().value()) << 32) |
        paths[i].destination.network().value();
    std::size_t s = slot_of(key);
    while (slots_[s].index != kEmpty) {
      if (slots_[s].key == key) {
        throw std::invalid_argument("duplicate prefix pair in path table");
      }
      s = (s + 1) & mask_;
    }
    slots_[s] = Slot{.key = key, .index = static_cast<std::uint32_t>(i)};
  }
}

MonitoringCache::MonitoringCache(Config cfg,
                                 std::span<const net::PrefixPair> paths)
    : classifier_(paths), engine_(cfg.protocol.make_engine()) {
  monitors_.reserve(paths.size());
  for (const net::PrefixPair& pair : paths) {
    core::HopMonitorConfig mc;
    mc.protocol = cfg.protocol;
    mc.tuning = cfg.tuning;
    mc.path = net::PathId{
        .header_spec_id = cfg.protocol.header_spec.id(),
        .prefixes = pair,
        .previous_hop = cfg.previous_hop,
        .next_hop = cfg.next_hop,
        .max_diff = cfg.max_diff,
    };
    monitors_.push_back(std::make_unique<core::HopMonitor>(mc));
  }
}

std::size_t MonitoringCache::observe(const net::Packet& p,
                                     net::Timestamp when) {
  const std::size_t path = classifier_.classify(p.header);
  if (path == PathClassifier::npos) {
    ++unknown_;
    return path;
  }
  // One hash per packet: decide() feeds both sampler and aggregator.
  const net::PacketDecisions d = engine_.decide(p);
  const std::size_t swept = monitors_[path]->observe(d, when);
  // §7.1 cost model: look up PathID, update PktCnt, store the
  // digest/timestamp record = 3 accesses; 1 digest; 1 timestamp; plus the
  // deferred sweep accesses when the packet was a marker.
  ops_.memory_accesses += 3;
  ops_.hash_computations += 1;
  ops_.timestamp_reads += 1;
  ops_.marker_sweep_accesses += swept;
  return path;
}

void MonitoringCache::observe_batch_impl(std::span<const net::Packet> packets,
                                         std::span<const net::Timestamp> when) {
  // Explicit empty-batch no-op: a drained ingest queue or an all-unknown
  // slice routinely produces empty batches, and they must not perturb
  // counters or touch monitor storage.
  if (packets.empty()) return;
  // Tight loop: counters stay in registers and flush once at the end.
  const bool use_origin_time = when.empty();
  std::uint64_t unknown = 0;
  std::uint64_t observed = 0;
  std::uint64_t swept = 0;
  const std::unique_ptr<core::HopMonitor>* monitors = monitors_.data();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const net::Packet& p = packets[i];
    const std::size_t path = classifier_.classify(p.header);
    if (path == PathClassifier::npos) {
      ++unknown;
      continue;
    }
    const net::PacketDecisions d = engine_.decide(p);
    swept += monitors[path]->observe(
        d, use_origin_time ? p.origin_time : when[i]);
    ++observed;
  }
  unknown_ += unknown;
  ops_.memory_accesses += observed * 3;
  ops_.hash_computations += observed;
  ops_.timestamp_reads += observed;
  ops_.marker_sweep_accesses += swept;
}

void MonitoringCache::observe_batch(std::span<const net::Packet> packets,
                                    std::span<const net::Timestamp> when) {
  if (packets.size() != when.size()) {
    throw std::invalid_argument("observe_batch: packet/timestamp mismatch");
  }
  observe_batch_impl(packets, when);
}

void MonitoringCache::observe_batch(std::span<const net::Packet> packets) {
  observe_batch_impl(packets, {});
}

core::SampleReceipt MonitoringCache::collect_samples(std::size_t path) {
  return monitors_.at(path)->collect_samples();
}

std::vector<core::AggregateReceipt> MonitoringCache::collect_aggregates(
    std::size_t path, bool flush_open) {
  return monitors_.at(path)->collect_aggregates(flush_open);
}

core::PathDrain MonitoringCache::drain_path(std::size_t path,
                                            bool flush_open) {
  return monitors_.at(path)->drain(flush_open);
}

std::vector<core::PathDrain> MonitoringCache::drain_all(bool flush_open) {
  std::vector<core::PathDrain> out;
  out.reserve(monitors_.size());
  for (auto& m : monitors_) out.push_back(m->drain(flush_open));
  return out;
}

std::size_t MonitoringCache::modeled_cache_bytes() const noexcept {
  return monitors_.size() * kOpenReceiptBytes;
}

std::size_t MonitoringCache::modeled_temp_buffer_bytes() const noexcept {
  std::size_t records = 0;
  for (const auto& m : monitors_) {
    records += m->sampler().buffered();
  }
  return records * kTempRecordBytes;
}

std::size_t MonitoringCache::temp_buffer_peak_records() const noexcept {
  std::size_t peak = 0;
  for (const auto& m : monitors_) {
    peak += m->sampler().buffer_peak();
  }
  return peak;
}

}  // namespace vpm::collector
