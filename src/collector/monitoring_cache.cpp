#include "collector/monitoring_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "collector/classify_batch.hpp"
#include "net/simd_dispatch.hpp"

namespace vpm::collector {

PathClassifier::PathClassifier(std::span<const net::PrefixPair> paths) {
  if (paths.empty()) {
    throw std::invalid_argument("PathClassifier: no paths");
  }
  // Cap so bit_ceil(2 * paths) <= 2^32: slot indices then fit the uint32
  // chunk arrays of classify_batch (equivalently shift_ >= 32, which the
  // AVX2 phase-A kernel relies on to pack its 64-bit lanes).
  if (paths.size() > (std::size_t{1} << 31)) {
    throw std::invalid_argument("PathClassifier: too many paths");
  }
  const std::uint8_t src_len = paths.front().source.length();
  const std::uint8_t dst_len = paths.front().destination.length();
  src_mask_ = paths.front().source.mask();
  dst_mask_ = paths.front().destination.mask();
  paths_ = paths.size();

  // Size the table once: smallest power of two holding the paths at load
  // factor <= 0.5, so probe chains stay short and insertion never rehashes.
  const std::size_t slots = std::bit_ceil(paths.size() * 2);
  slots_.resize(slots);
  mask_ = slots - 1;
  shift_ = static_cast<std::uint32_t>(64 - std::bit_width(mask_));

  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].source.length() != src_len ||
        paths[i].destination.length() != dst_len) {
      throw std::invalid_argument(
          "PathClassifier requires uniform prefix lengths");
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(paths[i].source.network().value()) << 32) |
        paths[i].destination.network().value();
    std::size_t s = slot_of(key);
    while (slots_[s].index != kEmpty) {
      if (slots_[s].key == key) {
        throw std::invalid_argument("duplicate prefix pair in path table");
      }
      s = (s + 1) & mask_;
    }
    slots_[s] = Slot{.key = key, .index = static_cast<std::uint32_t>(i)};
  }
}

void PathClassifier::hash_slots_batch(const net::Packet* pkts, std::size_t n,
                                      std::uint64_t* keys,
                                      std::uint32_t* slots) const noexcept {
  static const detail::HashSlotsFn avx2 = detail::hash_slots_avx2();
  const detail::ClassifyHashParams cp{
      .src_mask = src_mask_, .dst_mask = dst_mask_, .shift = shift_};
  if (avx2 != nullptr && n >= 8 &&
      net::simd::active_tier() == net::simd::Tier::kAvx2) {
    avx2(cp, pkts, n, keys, slots);
  } else {
    detail::hash_slots_scalar(cp, pkts, n, keys, slots);
  }
  // Kick off every probe's first line before any probe blocks on one.
  for (std::size_t i = 0; i < n; ++i) {
    __builtin_prefetch(&slots_[slots[i]], /*rw=*/0);
  }
}

void PathClassifier::resolve_batch(const std::uint64_t* keys,
                                   const std::uint32_t* slots, std::size_t n,
                                   std::uint32_t* out) const noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = keys[i];
    std::size_t s = slots[i];
    std::uint32_t r = kNoPath;
    while (slots_[s].index != kEmpty) {
      if (slots_[s].key == key) {
        r = slots_[s].index;
        break;
      }
      s = (s + 1) & mask_;
    }
    out[i] = r;
  }
}

void PathClassifier::classify_batch(const net::Packet* pkts, std::size_t n,
                                    std::uint32_t* out) const noexcept {
  constexpr std::size_t kSpan = 64;
  std::uint64_t keys[kSpan];
  std::uint32_t first[kSpan];
  for (std::size_t base = 0; base < n; base += kSpan) {
    const std::size_t m = std::min(kSpan, n - base);
    hash_slots_batch(pkts + base, m, keys, first);
    resolve_batch(keys, first, m, out + base);
  }
}

namespace {

void validate_lifecycle(const LifecycleConfig& cfg) {
  if (cfg.evict_idle && cfg.idle_ttl <= net::Duration{0}) {
    throw std::invalid_argument(
        "LifecycleConfig: idle_ttl must be positive when eviction is "
        "enabled");
  }
  // NaN fails both comparisons' complements, so spell the valid range out.
  if (!(cfg.compact_garbage_fraction >= 0.0 &&
        cfg.compact_garbage_fraction <= 1.0)) {
    throw std::invalid_argument(
        "LifecycleConfig: compact_garbage_fraction must lie in [0, 1]");
  }
}

core::PathParams params_for(const MonitoringCache::Config& cfg) {
  // sample_threshold_for validates the tuning (throws on infeasible
  // rates), exactly as the per-path monitor constructor used to.
  return core::PathParams{
      .marker_threshold = cfg.protocol.marker_threshold(),
      .sample_threshold =
          core::sample_threshold_for(cfg.protocol, cfg.tuning.sample_rate),
      .cut_threshold = core::cut_threshold_for(cfg.tuning.cut_rate),
      .j_window = cfg.protocol.reorder_window_j,
      .marker_max_age = cfg.protocol.marker_max_age,
  };
}

}  // namespace

MonitoringCache::MonitoringCache(Config cfg,
                                 std::span<const net::PrefixPair> paths)
    : classifier_(paths),
      engine_(cfg.protocol.make_engine()),
      state_(params_for(cfg), paths.size()),
      lifecycle_(cfg.lifecycle) {
  validate_lifecycle(lifecycle_);
  path_ids_.reserve(paths.size());
  for (const net::PrefixPair& pair : paths) {
    path_ids_.push_back(net::PathId{
        .header_spec_id = cfg.protocol.header_spec.id(),
        .prefixes = pair,
        .previous_hop = cfg.previous_hop,
        .next_hop = cfg.next_hop,
        .max_diff = cfg.max_diff,
    });
  }
}

std::size_t MonitoringCache::observe(const net::Packet& p,
                                     net::Timestamp when) {
  const std::size_t path = classifier_.classify(p.header);
  if (path == PathClassifier::npos) {
    ++unknown_;
    return path;
  }
  // One hash per packet: decide() feeds both sampler and aggregator.
  const net::PacketDecisions d = engine_.decide(p);
  const std::size_t swept = core::path_observe(state_, path, d, when);
  // §7.1 cost model: look up PathID, update PktCnt, store the
  // digest/timestamp record = 3 accesses; 1 digest; 1 timestamp; plus the
  // deferred sweep accesses when the packet was a marker.
  ops_.memory_accesses += 3;
  ops_.hash_computations += 1;
  ops_.timestamp_reads += 1;
  ops_.marker_sweep_accesses += swept;
  sync_kernel_counters();
  return path;
}

void MonitoringCache::sync_kernel_counters() noexcept {
  // The sweep kernels count invocations on the SoA block (the one
  // accounting point the facades share); mirror the absolute values into
  // the DataPlaneOps snapshot.  Assignment, not +=, so per-shard ops still
  // merge correctly by addition.
  ops_.sweep_kernel_scalar = state_.sweep_kernels.scalar;
  ops_.sweep_kernel_avx2 = state_.sweep_kernels.avx2;
}

void MonitoringCache::observe_batch_impl(std::span<const net::Packet> packets,
                                         std::span<const net::Timestamp> when) {
  // Explicit empty-batch no-op: a drained ingest queue or an all-unknown
  // slice routinely produces empty batches, and they must not perturb
  // counters or touch monitor storage.
  if (packets.empty()) return;
  // Tight loop: counters stay in registers and flush once at the end.
  const bool use_origin_time = when.empty();
  std::uint64_t unknown = 0;
  std::uint64_t observed = 0;
  std::uint64_t swept = 0;

  // Chunked SIMD pipeline, software-pipelined two chunks deep.  While the
  // kernel pass for chunk k runs, chunk k+1's decisions and prefetches are
  // already issued and chunk k+2's classifier probe lines are in flight:
  //   1. hash_slots_batch for chunk k+2 — SIMD multiply-hash plus a
  //      prefetch of every probe's first classifier line, issued a whole
  //      chunk before those probes run;
  //   2. resolve_batch for chunk k+1 against lines prefetched one chunk
  //      ago (the open-addressing probes hit warm lines);
  //   3. a compaction pass collecting chunk k+1's known-path packets,
  //      issuing a prefetch for each path's PathSlot line;
  //   4. decide_batch — the 8-wide lookup3 digest of exactly the known
  //      packets (the §7.1 accounting: unknown packets are never hashed),
  //      whose compute overlaps the slot prefetch latency;
  //   5. above ~4k paths, a prefetch walk over the now-warm slots for the
  //      arena lines the kernel will touch (below, path state fits in L2
  //      and the extra prefetch pass costs more than it hides);
  //   6. the scalar per-packet kernel pass for chunk k — a full chunk of
  //      classifier/digest compute after its arena prefetches were issued,
  //      so the random arena lines have had time to arrive.  (A path
  //      repeating across adjacent chunks can make step 5's addresses
  //      stale — that only mis-aims a prefetch, never the kernel.)
  constexpr std::size_t kStagedThreshold = 4096;
  constexpr std::size_t kChunk = 64;
  const bool staged = state_.path_count() > kStagedThreshold;
  std::uint64_t keys_a[kChunk], keys_b[kChunk];
  std::uint32_t slot_a[kChunk], slot_b[kChunk];
  std::uint64_t* keys_cur = keys_a;
  std::uint64_t* keys_next = keys_b;
  std::uint32_t* slot_cur = slot_a;
  std::uint32_t* slot_next = slot_b;
  std::uint32_t path_a[kChunk], path_b[kChunk];
  std::uint32_t known_a[kChunk], known_b[kChunk];
  net::PacketDecisions dec_a[kChunk], dec_b[kChunk];
  std::uint32_t* path_cur = path_a;
  std::uint32_t* path_prev = path_b;
  std::uint32_t* known_cur = known_a;
  std::uint32_t* known_prev = known_b;
  net::PacketDecisions* dec_cur = dec_a;
  net::PacketDecisions* dec_prev = dec_b;
  std::size_t m_prev = 0;
  std::size_t base_prev = 0;
  bool have_prev = false;
  {
    const std::size_t n0 = std::min(kChunk, packets.size());
    classifier_.hash_slots_batch(packets.data(), n0, keys_cur, slot_cur);
  }
  const core::PathSlot* slots = state_.slots.data();
  const auto kernel_pass = [&](std::size_t base, const std::uint32_t* path_of,
                               const std::uint32_t* known,
                               const net::PacketDecisions* dec,
                               std::size_t m) {
    const net::Packet* p = packets.data() + base;
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t i = known[j];
      swept += core::path_observe(
          state_, path_of[i], dec[j],
          use_origin_time ? p[i].origin_time : when[base + i]);
    }
    observed += m;
  };
  for (std::size_t base = 0; base < packets.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, packets.size() - base);
    const net::Packet* p = packets.data() + base;

    const std::size_t next = base + kChunk;
    if (next < packets.size()) {
      classifier_.hash_slots_batch(packets.data() + next,
                                   std::min(kChunk, packets.size() - next),
                                   keys_next, slot_next);
    }
    classifier_.resolve_batch(keys_cur, slot_cur, n, path_cur);
    std::swap(keys_cur, keys_next);
    std::swap(slot_cur, slot_next);

    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (path_cur[i] == PathClassifier::kNoPath) {
        ++unknown;
        continue;
      }
      known_cur[m++] = static_cast<std::uint32_t>(i);
      if (staged) __builtin_prefetch(&slots[path_cur[i]], /*rw=*/1);
    }

    engine_.decide_batch(p, known_cur, m, dec_cur);

    if (staged) {
      const core::TimedDigest* buf = state_.buf_arena.data();
      const core::TimedDigest* ring = state_.ring_arena.data();
      const std::int64_t max_age_ns =
          state_.params.marker_max_age.nanoseconds();
      const std::uint32_t marker_thr = state_.params.marker_threshold;
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t i = known_cur[j];
        const core::PathSlot& sl = slots[path_cur[i]];
        if (sl.warm.buf_cap != 0) {
          __builtin_prefetch(buf + sl.warm.buf_begin + sl.hot.buf_size, 1);
          // Slice head: the time-keyed marker rule reads buf[0] every
          // packet, and sweeps walk the slice from the front.
          __builtin_prefetch(buf + sl.warm.buf_begin, 0);
          // Sweep-imminent: this packet sweeps the whole slice when its
          // digest already decided it is a marker (dec_cur is computed a
          // chunk ahead of the kernel pass), or when even the NEWEST
          // buffered record (stamped last_at_ns or later) has outlived
          // marker_max_age — pull in the middle lines the two end
          // prefetches above don't cover, so the 8-wide sweep kernel
          // streams warm lines.
          if (sl.hot.buf_size > 8) {
            bool sweeps = dec_cur[j].marker_value > marker_thr;
            if (!sweeps && max_age_ns > 0) {
              const std::int64_t now_ns =
                  (use_origin_time ? p[i].origin_time : when[base + i])
                      .nanoseconds();
              sweeps = now_ns - sl.hot.last_at_ns >= max_age_ns;
            }
            if (sweeps) {
              constexpr std::size_t kPerLine =
                  64 / sizeof(core::TimedDigest);
              for (std::size_t r = kPerLine; r < sl.hot.buf_size;
                   r += kPerLine) {
                __builtin_prefetch(buf + sl.warm.buf_begin + r, 0);
              }
            }
          }
        }
        if (sl.warm.ring_cap != 0) {
          const std::uint32_t mask = sl.warm.ring_cap - 1;
          __builtin_prefetch(
              ring + sl.warm.ring_begin +
                  ((sl.hot.ring_head + sl.hot.ring_size) & mask),
              1);
          // Ring head: the J-window eviction loop reads the oldest entry,
          // which sits a window's worth of records behind the append line.
          __builtin_prefetch(
              ring + sl.warm.ring_begin + (sl.hot.ring_head & mask), 0);
        }
      }
    }

    if (have_prev) {
      kernel_pass(base_prev, path_prev, known_prev, dec_prev, m_prev);
    }
    std::swap(path_cur, path_prev);
    std::swap(known_cur, known_prev);
    std::swap(dec_cur, dec_prev);
    m_prev = m;
    base_prev = base;
    have_prev = true;
  }
  if (have_prev) {
    kernel_pass(base_prev, path_prev, known_prev, dec_prev, m_prev);
  }
  unknown_ += unknown;
  ops_.memory_accesses += observed * 3;
  ops_.hash_computations += observed;
  ops_.timestamp_reads += observed;
  ops_.marker_sweep_accesses += swept;
  sync_kernel_counters();
}

void MonitoringCache::observe_batch(std::span<const net::Packet> packets,
                                    std::span<const net::Timestamp> when) {
  if (packets.size() != when.size()) {
    throw std::invalid_argument("observe_batch: packet/timestamp mismatch");
  }
  observe_batch_impl(packets, when);
}

void MonitoringCache::observe_batch(std::span<const net::Packet> packets) {
  observe_batch_impl(packets, {});
}

core::SampleReceipt MonitoringCache::collect_samples(std::size_t path) {
  return core::path_collect_samples(state_, path, path_ids_.at(path));
}

std::vector<core::AggregateReceipt> MonitoringCache::collect_aggregates(
    std::size_t path, bool flush_open) {
  return core::path_collect_aggregates(state_, path, path_ids_.at(path),
                                       flush_open);
}

core::PathDrain MonitoringCache::drain_path(std::size_t path,
                                            bool flush_open) {
  return core::PathDrain{.samples = collect_samples(path),
                         .aggregates = collect_aggregates(path, flush_open)};
}

void MonitoringCache::drain_all(core::ReceiptSink& sink, bool flush_open) {
  for (std::size_t p = 0; p < state_.path_count(); ++p) {
    core::emit_drain(sink, p, drain_path(p, flush_open));
  }
}

std::vector<core::PathDrain> MonitoringCache::drain_all(bool flush_open) {
  core::VectorSink sink;
  drain_all(sink, flush_open);
  std::vector<core::IndexedPathDrain> stream = std::move(sink).take();
  std::vector<core::PathDrain> out;
  out.reserve(stream.size());
  for (core::IndexedPathDrain& d : stream) {
    out.push_back(std::move(d.drain));
  }
  return out;
}

MonitoringCache::EvictResult MonitoringCache::evict_path_if_idle(
    std::size_t path, net::Timestamp now, core::ReceiptSink& sink) {
  EvictResult r;
  if (!lifecycle_.evict_idle) return r;
  if (!state_.path_has_state(path)) return r;
  // last_at_ns is written by every observed packet (the fused kernel runs
  // the aggregator for each packet), so it is the path's last-activity
  // time; path_has_state guards the never-observed zero.
  const net::Timestamp last{state_.slots[path].hot.last_at_ns};
  if (now - last < lifecycle_.idle_ttl) return r;

  // Drain through the normal receipt path first — nothing decided is
  // lost.  A path with no receipts to disclose ships nothing: an empty
  // eviction group on the wire would read as an extra reporting round for
  // that path (the importer's repeated-key rule) and age round-fed
  // verifier state early.
  core::PathDrain drain = drain_path(path, /*flush_open=*/true);
  if (!drain.samples.samples.empty() || !drain.aggregates.empty()) {
    core::emit_drain(sink, path, std::move(drain));
  }
  r.dropped_buffered = core::path_evict(state_, path);
  r.evicted = true;
  ++lifecycle_totals_.evicted_paths;
  lifecycle_totals_.dropped_buffered_records += r.dropped_buffered;
  return r;
}

MonitoringCache::DecayResult MonitoringCache::run_decay_pass() {
  DecayResult r;
  if (lifecycle_.decay_low_occupancy_drains == 0) return r;
  for (std::size_t p = 0; p < state_.path_count(); ++p) {
    const core::PathDecay d =
        core::path_decay(state_, p, lifecycle_.decay_low_occupancy_drains);
    r.halved_slices += d.halved_slices;
    r.released_bytes += d.released_bytes;
    r.halved_emitted += d.halved_emitted;
    r.released_emitted_bytes += d.released_emitted_bytes;
  }
  lifecycle_totals_.decayed_slices += r.halved_slices;
  lifecycle_totals_.decayed_arena_bytes += r.released_bytes;
  lifecycle_totals_.decayed_emitted_vectors += r.halved_emitted;
  lifecycle_totals_.decayed_emitted_bytes += r.released_emitted_bytes;
  return r;
}

bool MonitoringCache::compaction_due() const noexcept {
  const std::size_t total = state_.arena_bytes();
  if (total == 0) return false;
  const std::size_t garbage = state_.arena_garbage_bytes();
  return static_cast<double>(garbage) >
         lifecycle_.compact_garbage_fraction * static_cast<double>(total);
}

std::size_t MonitoringCache::compact_arenas() {
  const std::size_t reclaimed = core::path_state_compact(state_);
  ++lifecycle_totals_.compactions;
  lifecycle_totals_.reclaimed_arena_bytes += reclaimed;
  return reclaimed;
}

LifecycleReport MonitoringCache::run_lifecycle(net::Timestamp now,
                                               core::ReceiptSink& sink) {
  LifecycleReport report;
  if (lifecycle_.evict_idle) {
    for (std::size_t p = 0; p < state_.path_count(); ++p) {
      const EvictResult r = evict_path_if_idle(p, now, sink);
      if (r.evicted) {
        ++report.evicted_paths;
        report.dropped_buffered_records += r.dropped_buffered;
      }
    }
  }
  // Decay before the compaction check: the halves it releases count as
  // garbage and can push this very pass over the watermark.
  const DecayResult d = run_decay_pass();
  report.decayed_slices += d.halved_slices;
  report.decayed_arena_bytes += d.released_bytes;
  report.decayed_emitted_vectors += d.halved_emitted;
  report.decayed_emitted_bytes += d.released_emitted_bytes;
  if (compaction_due()) {
    report.reclaimed_arena_bytes += compact_arenas();
    ++report.compactions;
  }
  return report;
}

std::size_t MonitoringCache::modeled_cache_bytes() const noexcept {
  return state_.hot_bytes();
}

std::size_t MonitoringCache::modeled_temp_buffer_bytes() const noexcept {
  return state_.buffered_records() * kTempRecordBytes;
}

std::size_t MonitoringCache::temp_buffer_peak_records() const noexcept {
  return state_.buffer_peak_records();
}

std::size_t MonitoringCache::emitted_peak_records() const noexcept {
  return state_.emitted_peak_records();
}

}  // namespace vpm::collector
