#include "collector/monitoring_cache.hpp"

#include <stdexcept>

namespace vpm::collector {

PathClassifier::PathClassifier(std::span<const net::PrefixPair> paths) {
  if (paths.empty()) {
    throw std::invalid_argument("PathClassifier: no paths");
  }
  const std::uint8_t src_len = paths.front().source.length();
  const std::uint8_t dst_len = paths.front().destination.length();
  src_mask_ = paths.front().source.mask();
  dst_mask_ = paths.front().destination.mask();
  table_.reserve(paths.size() * 2);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].source.length() != src_len ||
        paths[i].destination.length() != dst_len) {
      throw std::invalid_argument(
          "PathClassifier requires uniform prefix lengths");
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(paths[i].source.network().value()) << 32) |
        paths[i].destination.network().value();
    if (!table_.emplace(key, i).second) {
      throw std::invalid_argument("duplicate prefix pair in path table");
    }
  }
}

std::size_t PathClassifier::classify(const net::PacketHeader& h) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(h.src.value() & src_mask_) << 32) |
      (h.dst.value() & dst_mask_);
  const auto it = table_.find(key);
  return it == table_.end() ? npos : it->second;
}

MonitoringCache::MonitoringCache(Config cfg,
                                 std::span<const net::PrefixPair> paths)
    : classifier_(paths) {
  monitors_.reserve(paths.size());
  for (const net::PrefixPair& pair : paths) {
    core::HopMonitorConfig mc;
    mc.protocol = cfg.protocol;
    mc.tuning = cfg.tuning;
    mc.path = net::PathId{
        .header_spec_id = cfg.protocol.header_spec.id(),
        .prefixes = pair,
        .previous_hop = cfg.previous_hop,
        .next_hop = cfg.next_hop,
        .max_diff = cfg.max_diff,
    };
    monitors_.push_back(std::make_unique<core::HopMonitor>(mc));
  }
}

std::size_t MonitoringCache::observe(const net::Packet& p,
                                     net::Timestamp when) {
  const std::size_t path = classifier_.classify(p.header);
  if (path == PathClassifier::npos) {
    ++unknown_;
    return path;
  }
  monitors_[path]->observe(p, when);
  // §7.1 cost model: look up PathID, update PktCnt, store the
  // digest/timestamp record = 3 accesses; 1 digest; 1 timestamp.
  ops_.memory_accesses += 3;
  ops_.hash_computations += 1;
  ops_.timestamp_reads += 1;
  return path;
}

core::SampleReceipt MonitoringCache::collect_samples(std::size_t path) {
  return monitors_.at(path)->collect_samples();
}

std::vector<core::AggregateReceipt> MonitoringCache::collect_aggregates(
    std::size_t path, bool flush_open) {
  return monitors_.at(path)->collect_aggregates(flush_open);
}

std::size_t MonitoringCache::modeled_cache_bytes() const noexcept {
  return monitors_.size() * kOpenReceiptBytes;
}

std::size_t MonitoringCache::modeled_temp_buffer_bytes() const noexcept {
  std::size_t records = 0;
  for (const auto& m : monitors_) {
    records += m->sampler().buffered();
  }
  return records * kTempRecordBytes;
}

std::size_t MonitoringCache::temp_buffer_peak_records() const noexcept {
  std::size_t peak = 0;
  for (const auto& m : monitors_) {
    peak += m->sampler().buffer_peak();
  }
  return peak;
}

}  // namespace vpm::collector
