// Batch classifier-hash kernel behind the SIMD dispatch shim.
//
// PathClassifier's per-packet lookup splits into two phases for batch
// work: (A) key packing + Fibonacci multiply-hash to a first slot index —
// pure arithmetic, vectorizable four keys per ymm register (64-bit lanes)
// — and (B) the open-addressing probe, which stays scalar but runs
// against classifier lines that phase A prefetched, so the probes of a
// whole chunk overlap in the memory system instead of serializing.
//
// The AVX2 kernel computes phase A only; byte-identity with the scalar
// key_of/slot_of pair is pinned by tests/simd_dispatch_test.cpp (the
// 64x64 low-half multiply is emulated from 32x32 partial products —
// AVX2 has no 64-bit low multiply).
#ifndef VPM_COLLECTOR_CLASSIFY_BATCH_HPP
#define VPM_COLLECTOR_CLASSIFY_BATCH_HPP

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace vpm::collector::detail {

/// The classifier constants phase A needs (immutable after construction).
struct ClassifyHashParams {
  std::uint32_t src_mask = 0;
  std::uint32_t dst_mask = 0;
  std::uint32_t shift = 63;  ///< 64 - log2(slot count)
};

/// Phase-A kernel: keys[i] = key_of(pkts[i]), slots[i] = slot_of(keys[i])
/// for i in [0, n).  Requires shift >= 32 so slot indices fit in 32 bits
/// (guaranteed: the classifier caps the table at 2^32 slots).
using HashSlotsFn = void (*)(const ClassifyHashParams&, const net::Packet*,
                             std::size_t n, std::uint64_t* keys,
                             std::uint32_t* slots);

/// Portable scalar kernel (always available; the dispatch fallback).
void hash_slots_scalar(const ClassifyHashParams& cp, const net::Packet* pkts,
                       std::size_t n, std::uint64_t* keys,
                       std::uint32_t* slots) noexcept;

/// The AVX2 kernel, or nullptr when not compiled with -mavx2.  Callers
/// must additionally check simd::active_tier().
[[nodiscard]] HashSlotsFn hash_slots_avx2() noexcept;

}  // namespace vpm::collector::detail

#endif  // VPM_COLLECTOR_CLASSIFY_BATCH_HPP
