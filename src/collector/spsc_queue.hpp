// A bounded single-producer/single-consumer ring queue.
//
// The sharded collector's ingest stage hands routed packet batches to
// shard workers through these: one queue per (producer, shard) pair keeps
// every queue strictly SPSC, so the only synchronisation on the hot path
// is one release store per push and one acquire load per pop (plus the
// cached-index trick to avoid re-reading the far side's counter on every
// call).  Closing is a producer-side flag: consumers treat "closed and
// empty" as end-of-stream, and because close() happens after the last
// push, a consumer that observes closed==true before a failed pop can
// never miss an item.
#ifndef VPM_COLLECTOR_SPSC_QUEUE_HPP
#define VPM_COLLECTOR_SPSC_QUEUE_HPP

#include <atomic>
#include <bit>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace vpm::collector {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity)
      : ring_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(ring_.size() - 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer only.  Returns false if the ring is full.
  [[nodiscard]] bool try_push(T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == ring_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == ring_.size()) return false;
    }
    ring_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer only.  Spins (with yields) until space frees up.
  void push(T v) {
    while (!try_push(v)) std::this_thread::yield();
  }

  /// Consumer only.  Returns false if the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Marks end-of-stream.  Callable by the producer after its final push,
  /// or by any thread whose call happens-after that final push (e.g. a
  /// controller that joined the producer thread) — the release store then
  /// carries the producer's writes to the consumer transitively.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Consumer: has the producer closed the stream?  Check BEFORE a failed
  /// try_pop to conclude end-of-stream (close() follows the last push, so
  /// closed-then-empty is final).
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

 private:
  std::vector<T> ring_;
  std::size_t mask_;
  // Producer and consumer counters on separate cache lines; each side
  // keeps a stale copy of the other's counter to avoid ping-ponging it.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer-owned
  std::size_t head_cache_ = 0;                    ///< producer-owned
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer-owned
  std::size_t tail_cache_ = 0;                    ///< consumer-owned
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_SPSC_QUEUE_HPP
