#include "collector/classify_batch.hpp"

namespace vpm::collector::detail {

void hash_slots_scalar(const ClassifyHashParams& cp, const net::Packet* pkts,
                       std::size_t n, std::uint64_t* keys,
                       std::uint32_t* slots) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketHeader& h = pkts[i].header;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(h.src.value() & cp.src_mask) << 32) |
        (h.dst.value() & cp.dst_mask);
    keys[i] = key;
    slots[i] =
        static_cast<std::uint32_t>((key * 0x9E3779B97F4A7C15ull) >> cp.shift);
  }
}

}  // namespace vpm::collector::detail
