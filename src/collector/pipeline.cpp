#include "collector/pipeline.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace vpm::collector {

bool CheckHeaderElement::process(const net::Packet& p,
                                 net::Timestamp /*when*/) {
  // Minimal IPv4 sanity: non-zero addresses, plausible length.
  if (p.header.src.value() == 0 || p.header.dst.value() == 0 ||
      p.header.total_length < 20) {
    ++bad_;
    return false;
  }
  return true;
}

RouteLookupElement::RouteLookupElement(std::vector<Route> routes) {
  if (routes.empty()) {
    throw std::invalid_argument("empty route table");
  }
  for (const Route& r : routes) {
    table_.insert(r.prefix, r.next_hop_index);
  }
}

bool RouteLookupElement::process(const net::Packet& p,
                                 net::Timestamp /*when*/) {
  const auto hit = table_.lookup(p.header.dst);
  if (!hit.has_value()) {
    ++no_route_;
    return false;
  }
  last_next_hop_ = *hit;
  return true;
}

std::vector<RouteLookupElement::Route> RouteLookupElement::synthetic_table(
    std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Route> routes;
  routes.reserve(n + 1);
  std::uniform_int_distribution<std::uint32_t> octet(1, 223);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t net =
        (octet(rng) << 24) | ((octet(rng) & 0xFFu) << 16);
    routes.push_back(Route{net::Prefix{net::Ipv4Address{net}, 16},
                           static_cast<std::uint32_t>(i % 16)});
  }
  routes.push_back(Route{net::Prefix{net::Ipv4Address{0}, 0}, 0});
  return routes;
}

}  // namespace vpm::collector
