#include "collector/resource_model.hpp"

#include "collector/monitoring_cache.hpp"
#include "core/receipt_batch.hpp"

namespace vpm::collector {

std::size_t monitoring_cache_bytes(std::size_t active_paths) {
  return active_paths * kOpenReceiptBytes;
}

std::size_t temp_buffer_bytes(double packets_per_second,
                              net::Duration j_window) {
  const double window_s = 2.0 * j_window.seconds();
  const double records = packets_per_second * window_s;
  return static_cast<std::size_t>(records) * kTempRecordBytes;
}

double link_pps(double bits_per_second, double avg_packet_bytes) {
  return bits_per_second / (8.0 * avg_packet_bytes);
}

BandwidthOverhead bandwidth_overhead(const BandwidthParams& p) {
  // Marginal receipt bytes generated per observed packet at one HOP:
  //   aggregates: one 22 B receipt per `packets_per_aggregate` packets,
  //               plus 4 B per AggTrans id;
  //   samples:    7 B per sampled packet;
  //   headers:    the per-batch header amortised over its records.
  const double agg_bytes =
      (static_cast<double>(core::kAggregateRecordBytes) +
       4.0 * p.trans_ids_per_aggregate) /
      p.packets_per_aggregate;
  const double sample_bytes =
      static_cast<double>(core::kSampleRecordBytes) * p.sample_rate;
  const double header_bytes = p.batch_header_bytes / p.records_per_batch;

  BandwidthOverhead out;
  out.bytes_per_packet_per_hop = agg_bytes + sample_bytes + header_bytes;
  out.bytes_per_packet_path =
      out.bytes_per_packet_per_hop * static_cast<double>(p.path_hops);
  out.fraction_of_traffic = out.bytes_per_packet_path / p.avg_packet_bytes;
  return out;
}

}  // namespace vpm::collector
