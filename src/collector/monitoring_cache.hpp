// The collector module's multi-path monitoring cache (Section 7.1).
//
// "The collector module maintains state for each 'active path', i.e., each
// source-destination origin-prefix pair that is currently sending traffic
// through the specific HOP; this per-path state consists at least of one
// 'open' aggregate receipt (a PathID, AggID, and PktCnt — roughly 20
// bytes)."
//
// This wraps per-path HopMonitor state behind a prefix-pair classifier and
// accounts for the memory a hardware implementation would need, which the
// overhead bench reports against the paper's 2 MB / 100 k-path figure.
#ifndef VPM_COLLECTOR_MONITORING_CACHE_HPP
#define VPM_COLLECTOR_MONITORING_CACHE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/hop_monitor.hpp"
#include "net/packet.hpp"
#include "net/prefix.hpp"

namespace vpm::collector {

/// Classifies packets to path indices by masking src/dst addresses to a
/// fixed prefix length and looking the pair up.  (A production router
/// would use its FIB; uniform-length origin prefixes keep this a single
/// hash lookup per packet.)
class PathClassifier {
 public:
  /// All pairs must use the same prefix lengths.  Throws
  /// std::invalid_argument on empty input or mixed lengths.
  explicit PathClassifier(std::span<const net::PrefixPair> paths);

  /// Path index for this packet, or npos if it matches no known path.
  [[nodiscard]] std::size_t classify(const net::PacketHeader& h) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t path_count() const noexcept {
    return table_.size();
  }

 private:
  std::uint32_t src_mask_ = 0;
  std::uint32_t dst_mask_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> table_;
};

/// Per-packet data-plane cost counters (the §7.1 processing claim: three
/// memory accesses, one hash, one timestamp per packet, plus one more
/// access per packet at marker sweeps).
struct DataPlaneOps {
  std::uint64_t memory_accesses = 0;
  std::uint64_t hash_computations = 0;
  std::uint64_t timestamp_reads = 0;
};

/// One HOP's full collector: classifier + per-path monitors + accounting.
class MonitoringCache {
 public:
  struct Config {
    core::ProtocolParams protocol;
    core::HopTuning tuning;  ///< same local tuning for every path
    net::HopId self = net::kNoHop;
    net::HopId previous_hop = net::kNoHop;
    net::HopId next_hop = net::kNoHop;
    net::Duration max_diff = net::milliseconds(5);
  };

  /// Creates per-path state for every path upfront (paths are learned from
  /// routing, not data).  Throws on classifier/config errors.
  MonitoringCache(Config cfg, std::span<const net::PrefixPair> paths);

  /// Data-plane step: classify and update.  Unknown-path packets are
  /// counted and otherwise ignored.  Returns the path index or npos.
  std::size_t observe(const net::Packet& p, net::Timestamp when);

  /// Control-plane drain for one path.
  [[nodiscard]] core::SampleReceipt collect_samples(std::size_t path);
  [[nodiscard]] std::vector<core::AggregateReceipt> collect_aggregates(
      std::size_t path, bool flush_open = false);

  [[nodiscard]] std::size_t path_count() const noexcept {
    return monitors_.size();
  }
  [[nodiscard]] std::uint64_t unknown_path_packets() const noexcept {
    return unknown_;
  }
  [[nodiscard]] const DataPlaneOps& ops() const noexcept { return ops_; }

  /// Modeled SRAM footprint of the open-receipt state: paths x ~20 B
  /// (PathID ref + AggID + PktCnt), per the paper's arithmetic.
  [[nodiscard]] std::size_t modeled_cache_bytes() const noexcept;
  /// Modeled temp-buffer footprint right now: buffered records x 7 B.
  [[nodiscard]] std::size_t modeled_temp_buffer_bytes() const noexcept;
  /// High-water mark of the temp buffer across all paths (records).
  [[nodiscard]] std::size_t temp_buffer_peak_records() const noexcept;

  [[nodiscard]] const core::HopMonitor& monitor(std::size_t path) const {
    return *monitors_.at(path);
  }

 private:
  PathClassifier classifier_;
  std::vector<std::unique_ptr<core::HopMonitor>> monitors_;
  DataPlaneOps ops_;
  std::uint64_t unknown_ = 0;
};

/// Bytes of open-receipt state per path in a hardware monitoring cache
/// (PathID reference 4 B + AggID 8 B + PktCnt 4 B + open/close times 4 B):
/// the paper rounds the same inventory to "roughly 20 bytes".
inline constexpr std::size_t kOpenReceiptBytes = 20;
/// Bytes per temp-buffer record: PktID 4 B + Time 3 B (§7.1).
inline constexpr std::size_t kTempRecordBytes = 7;

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_MONITORING_CACHE_HPP
