// The collector module's multi-path monitoring cache (Section 7.1).
//
// "The collector module maintains state for each 'active path', i.e., each
// source-destination origin-prefix pair that is currently sending traffic
// through the specific HOP; this per-path state consists at least of one
// 'open' aggregate receipt (a PathID, AggID, and PktCnt — roughly 20
// bytes)."
//
// This owns structure-of-arrays per-path state behind a prefix-pair
// classifier and accounts for the memory a hardware implementation would
// need, which the overhead bench reports against the paper's 2 MB /
// 100 k-path figure.
//
// Data-plane fast path.  The per-packet step is classify -> digest ->
// dispatch, engineered to the paper's §7.1 budget of three memory
// accesses, ONE hash function and one timestamp computation per packet:
//   * PathClassifier is a preallocated open-addressing flat table
//     (power-of-two size, linear probing) — one multiply-hash plus a
//     short contiguous probe, no std::unordered_map node chasing;
//   * the packet is hashed exactly once (DigestEngine::decide) and the
//     resulting PacketDecisions feed both the sampler and the aggregator
//     kernels;
//   * per-path state is structure-of-arrays (core/path_state.hpp): the
//     fields every packet touches live in one contiguous 32-byte PathHot
//     record per path — the cache holds ONE digest engine and ONE
//     threshold set instead of the pre-SoA three engine copies and
//     per-path threshold duplicates inside 100k heap-allocated monitors;
//   * observe_batch() runs the loop over a span of packets, keeping the
//     cost counters in registers and amortizing per-call overhead.
// DataPlaneOps tracks the budget; hash_computations == observed packets
// by construction, with marker-sweep work accounted separately.
#ifndef VPM_COLLECTOR_MONITORING_CACHE_HPP
#define VPM_COLLECTOR_MONITORING_CACHE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/path_state.hpp"
#include "core/receipt.hpp"
#include "core/receipt_sink.hpp"
#include "net/packet.hpp"
#include "net/path_id.hpp"
#include "net/prefix.hpp"

namespace vpm::collector {

/// Classifies packets to path indices by masking src/dst addresses to a
/// fixed prefix length and looking the pair up in a preallocated
/// open-addressing flat table (power-of-two capacity, linear probing,
/// load factor <= 0.5).  (A production router would use its FIB;
/// uniform-length origin prefixes keep this a single multiply-hash plus a
/// short linear probe per packet.)
class PathClassifier {
 public:
  /// All pairs must use the same prefix lengths.  The table is sized once
  /// at construction (no rehashing later).  Throws std::invalid_argument
  /// on empty input, mixed lengths, or a duplicate prefix pair (which
  /// would otherwise silently shadow one path's state).
  explicit PathClassifier(std::span<const net::PrefixPair> paths);

  /// The 64-bit path key of a packet: masked source address in the high
  /// word, masked destination in the low word.  This is the identity the
  /// table stores and the identity a sharded collector routes by — both
  /// must agree, so the ONE packing definition lives here (the sharded
  /// collector calls the static overload with its own masks).
  [[nodiscard]] static std::uint64_t key_of(const net::PacketHeader& h,
                                            std::uint32_t src_mask,
                                            std::uint32_t dst_mask)
      noexcept {
    return (static_cast<std::uint64_t>(h.src.value() & src_mask) << 32) |
           (h.dst.value() & dst_mask);
  }
  [[nodiscard]] std::uint64_t key_of(const net::PacketHeader& h) const
      noexcept {
    return key_of(h, src_mask_, dst_mask_);
  }
  /// The same key computed from a path's prefix pair.
  [[nodiscard]] static std::uint64_t key_of(const net::PrefixPair& p)
      noexcept {
    return (static_cast<std::uint64_t>(p.source.network().value()) << 32) |
           p.destination.network().value();
  }

  /// Path index for this packet, or npos if it matches no known path.
  [[nodiscard]] std::size_t classify(const net::PacketHeader& h) const
      noexcept {
    const std::uint64_t key = key_of(h);
    std::size_t i = slot_of(key);
    while (slots_[i].index != kEmpty) {
      if (slots_[i].key == key) return slots_[i].index;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// 32-bit "no path" sentinel for the batch form (classify_batch packs
  /// indices into uint32 chunk arrays; valid indices are < path_count()
  /// which the constructor caps below 2^31).
  static constexpr std::uint32_t kNoPath = 0xFFFFFFFFu;

  /// Batch classify over a chunk: out[i] = classify(pkts[i].header), or
  /// kNoPath when unknown.  Phase A (key packing + multiply-hash to the
  /// first slot index) runs through the SIMD dispatch shim and prefetches
  /// every probe's first classifier line; phase B probes against the
  /// now-overlapping loads.  Identical results to classify() per packet.
  void classify_batch(const net::Packet* pkts, std::size_t n,
                      std::uint32_t* out) const noexcept;

  /// Phase A alone: keys[i]/slots[i] = key and first slot index of
  /// pkts[i], each probe's first classifier line prefetched.  Callers
  /// that software-pipeline chunks hash chunk k+1 before resolving chunk
  /// k, giving the prefetches a whole chunk of processing to land.
  void hash_slots_batch(const net::Packet* pkts, std::size_t n,
                        std::uint64_t* keys,
                        std::uint32_t* slots) const noexcept;
  /// Phase B alone: out[i] = path index for keys[i] starting the probe at
  /// slots[i] (kNoPath when unknown).  Inputs must come from
  /// hash_slots_batch over the same packets.
  void resolve_batch(const std::uint64_t* keys, const std::uint32_t* slots,
                     std::size_t n, std::uint32_t* out) const noexcept;

  [[nodiscard]] std::size_t path_count() const noexcept { return paths_; }
  /// Allocated slots (>= 2x path_count, for the probe-length bound).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t index = kEmpty;
  };
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const noexcept {
    // Fibonacci hashing: the golden-ratio multiply diffuses the masked
    // address bits; the TOP table_bits of the product index the
    // power-of-two table.  (Top bits, not middle: product bit j only
    // depends on key bits <= j, so an index drawn from bits 32..47 is
    // blind to the high src-prefix bits and paths like 10.x/16 -> same
    // dst would all share one probe chain.)
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  std::uint32_t src_mask_ = 0;
  std::uint32_t dst_mask_ = 0;
  std::size_t mask_ = 0;   ///< slots_.size() - 1
  std::uint32_t shift_ = 63;  ///< 64 - log2(slots_.size())
  std::size_t paths_ = 0;
  std::vector<Slot> slots_;
};

/// Per-packet data-plane cost counters (the §7.1 processing claim: three
/// memory accesses, one hash, one timestamp per packet, plus one more
/// access per buffered record at marker sweeps).
struct DataPlaneOps {
  std::uint64_t memory_accesses = 0;
  std::uint64_t hash_computations = 0;
  std::uint64_t timestamp_reads = 0;
  /// Temp-buffer records evaluated at marker sweeps (the deferred
  /// per-packet access the paper folds into "one more memory access").
  std::uint64_t marker_sweep_accesses = 0;
  /// Marker-sweep kernel invocations by SIMD tier (one per marker that
  /// swept a non-empty buffer; mirrors PathStateSoA::sweep_kernels so the
  /// §7.1 report can show which tier the protocol kernels actually ran).
  std::uint64_t sweep_kernel_scalar = 0;
  std::uint64_t sweep_kernel_avx2 = 0;

  /// Counters are plain per-packet sums, so per-shard instances merge by
  /// addition (the sharded collector reports one fused DataPlaneOps).
  DataPlaneOps& operator+=(const DataPlaneOps& o) noexcept {
    memory_accesses += o.memory_accesses;
    hash_computations += o.hash_computations;
    timestamp_reads += o.timestamp_reads;
    marker_sweep_accesses += o.marker_sweep_accesses;
    sweep_kernel_scalar += o.sweep_kernel_scalar;
    sweep_kernel_avx2 += o.sweep_kernel_avx2;
    return *this;
  }
};

/// Epoch-lifecycle knobs: how a long-running cache retires state at
/// control-plane passes (ROADMAP "arena compaction / eviction").
/// Validated at MonitoringCache construction.
struct LifecycleConfig {
  /// Evict paths whose last observed packet is at least `idle_ttl` before
  /// the lifecycle pass's `now`.  Eviction drains the path's receipts
  /// through the normal ReceiptSink path first (flush_open), then releases
  /// its arena slices and receipt capacity — monitoring restarts from
  /// scratch if the path revives.  Must be positive when `evict_idle`.
  bool evict_idle = false;
  net::Duration idle_ttl{0};
  /// Compact the arenas at a lifecycle pass when garbage exceeds this
  /// fraction of total arena bytes.  Must lie in [0, 1] — a watermark
  /// above capacity could never fire.
  double compact_garbage_fraction = 0.5;
  /// Live-capacity decay (core::path_decay): halve a live path's
  /// temp-buffer / J-ring slice once its occupancy has stayed below a
  /// quarter of capacity for this many consecutive lifecycle passes,
  /// flooring at the initial slice sizes.  The released half is arena
  /// garbage for the same pass's compaction check — a traffic spike's
  /// capacity ratchet decays back instead of pinning the memory plateau
  /// at the spike level.  0 disables (the default).
  std::uint32_t decay_low_occupancy_drains = 0;
};

/// What one lifecycle pass did (per-shard reports merge by addition).
struct LifecycleReport {
  std::size_t evicted_paths = 0;
  /// Temp-buffer records discarded undecided by evictions.
  std::size_t dropped_buffered_records = 0;
  std::size_t compactions = 0;
  std::size_t reclaimed_arena_bytes = 0;
  /// Live-capacity decay: slices halved and the live-capacity bytes they
  /// released to garbage.
  std::size_t decayed_slices = 0;
  std::size_t decayed_arena_bytes = 0;
  /// Emitted-sample capacity decay (heap freed directly, not arena
  /// garbage — drains retain emitted capacity since PR 10).
  std::size_t decayed_emitted_vectors = 0;
  std::size_t decayed_emitted_bytes = 0;

  LifecycleReport& operator+=(const LifecycleReport& o) noexcept {
    evicted_paths += o.evicted_paths;
    dropped_buffered_records += o.dropped_buffered_records;
    compactions += o.compactions;
    reclaimed_arena_bytes += o.reclaimed_arena_bytes;
    decayed_slices += o.decayed_slices;
    decayed_arena_bytes += o.decayed_arena_bytes;
    decayed_emitted_vectors += o.decayed_emitted_vectors;
    decayed_emitted_bytes += o.decayed_emitted_bytes;
    return *this;
  }
};

/// One HOP's full collector: classifier + per-path monitors + accounting.
class MonitoringCache {
 public:
  struct Config {
    core::ProtocolParams protocol;
    core::HopTuning tuning;  ///< same local tuning for every path
    net::HopId self = net::kNoHop;
    net::HopId previous_hop = net::kNoHop;
    net::HopId next_hop = net::kNoHop;
    net::Duration max_diff = net::milliseconds(5);
    LifecycleConfig lifecycle;
  };

  /// Creates per-path state for every path upfront (paths are learned from
  /// routing, not data).  Throws on classifier/config errors.
  MonitoringCache(Config cfg, std::span<const net::PrefixPair> paths);

  /// Data-plane step: classify, digest once, update.  Unknown-path packets
  /// are counted and otherwise ignored (and not hashed).  Returns the path
  /// index or npos.
  std::size_t observe(const net::Packet& p, net::Timestamp when);

  /// Batch data-plane step: classify, digest and dispatch each packet in
  /// one tight loop, amortizing per-call overhead.  `when[i]` is the local
  /// observation time of `packets[i]`.
  void observe_batch(std::span<const net::Packet> packets,
                     std::span<const net::Timestamp> when);
  /// Trace-replay convenience: observes each packet at its origin_time
  /// (the local clock of the first HOP in a simulated run).
  void observe_batch(std::span<const net::Packet> packets);

  /// Control-plane drain for one path.
  [[nodiscard]] core::SampleReceipt collect_samples(std::size_t path);
  [[nodiscard]] std::vector<core::AggregateReceipt> collect_aggregates(
      std::size_t path, bool flush_open = false);
  /// Drain one path's samples + aggregates as a unit.
  [[nodiscard]] core::PathDrain drain_path(std::size_t path,
                                           bool flush_open = false);
  /// Drain every path in index order (the canonical global receipt-stream
  /// order the sharded collector's merge step reproduces), streaming each
  /// path into `sink` as it drains — constant memory in the path count.
  /// This is the primary drain API; the vector overload below is a
  /// VectorSink adapter over it.
  void drain_all(core::ReceiptSink& sink, bool flush_open = false);
  /// Materialized drain (legacy form): collects the sink stream.
  [[nodiscard]] std::vector<core::PathDrain> drain_all(
      bool flush_open = false);

  // --- epoch lifecycle (control plane, alongside drains) ------------------

  /// One lifecycle pass at local time `now`: evict paths idle beyond the
  /// configured TTL (each drains begin_path/samples/aggregates(flush)/
  /// end_path into `sink` first, in ascending path order), then compact
  /// the arenas if garbage crossed the watermark.  A cache whose lifecycle
  /// config disables eviction still compacts.
  LifecycleReport run_lifecycle(net::Timestamp now, core::ReceiptSink& sink);

  /// Evict `path` now if it holds state and has been idle at least
  /// `idle_ttl` (no-op unless `evict_idle`).  Exposed so a sharded
  /// collector can interleave per-shard evictions in global path order.
  /// Returns {evicted, dropped-buffered-record count}.
  struct EvictResult {
    bool evicted = false;
    std::size_t dropped_buffered = 0;
  };
  EvictResult evict_path_if_idle(std::size_t path, net::Timestamp now,
                                 core::ReceiptSink& sink);

  /// One live-capacity decay observation for every path
  /// (core::path_decay with the configured streak).  run_lifecycle calls
  /// this between eviction and the compaction check; exposed so a sharded
  /// collector can run per-shard passes.  No-op when the decay knob is 0.
  struct DecayResult {
    std::size_t halved_slices = 0;
    std::size_t released_bytes = 0;
    std::size_t halved_emitted = 0;
    std::size_t released_emitted_bytes = 0;
  };
  DecayResult run_decay_pass();

  /// True when arena garbage exceeds the configured watermark fraction.
  [[nodiscard]] bool compaction_due() const noexcept;
  /// Unconditionally compact the arenas; returns bytes reclaimed.
  std::size_t compact_arenas();

  [[nodiscard]] std::size_t path_count() const noexcept {
    return state_.path_count();
  }
  [[nodiscard]] std::uint64_t unknown_path_packets() const noexcept {
    return unknown_;
  }
  [[nodiscard]] const DataPlaneOps& ops() const noexcept { return ops_; }

  /// Arena accounting for the long-running-operation report: bytes any
  /// live slice addresses vs relocation/eviction garbage.
  [[nodiscard]] std::size_t arena_live_bytes() const noexcept {
    return state_.arena_live_bytes();
  }
  [[nodiscard]] std::size_t arena_garbage_bytes() const noexcept {
    return state_.arena_garbage_bytes();
  }
  /// Cumulative lifecycle work over the cache's lifetime.
  [[nodiscard]] const LifecycleReport& lifecycle_totals() const noexcept {
    return lifecycle_totals_;
  }

  /// SRAM footprint of the open-receipt state: the ACTUAL contiguous
  /// hot-array bytes (paths x sizeof(core::PathHot)) — measured from the
  /// layout, not the paper's ~20 B estimate (kOpenReceiptBytes).
  [[nodiscard]] std::size_t modeled_cache_bytes() const noexcept;
  /// Modeled temp-buffer footprint right now: buffered records x 7 B.
  [[nodiscard]] std::size_t modeled_temp_buffer_bytes() const noexcept;
  /// High-water mark of the temp buffer across all paths (records).
  [[nodiscard]] std::size_t temp_buffer_peak_records() const noexcept;
  /// Largest undrained-sample backlog any single path has reached
  /// (records) — bounds the emitted capacity a live path retains across
  /// drains (core::PathStateSoA::emitted_peak_records).
  [[nodiscard]] std::size_t emitted_peak_records() const noexcept;

  /// The SoA block itself, for introspection (benchmarks, tests).
  [[nodiscard]] const core::PathStateSoA& state() const noexcept {
    return state_;
  }
  /// One path's §7.1 statistics (markers/swept/cuts/buffer peak; see
  /// core::PathStats for how observed/peaks derive from these).
  [[nodiscard]] const core::PathStats& path_stats(std::size_t path) const {
    return state_.stats.at(path);
  }
  /// The PathId stamped on `path`'s receipts.
  [[nodiscard]] const net::PathId& path_id(std::size_t path) const {
    return path_ids_.at(path);
  }
  [[nodiscard]] const PathClassifier& classifier() const noexcept {
    return classifier_;
  }

 private:
  /// Shared batch loop; an empty `when` means "each packet's origin_time".
  void observe_batch_impl(std::span<const net::Packet> packets,
                          std::span<const net::Timestamp> when);
  /// Mirror the SoA sweep-kernel counters into ops_ (absolute snapshot).
  void sync_kernel_counters() noexcept;

  PathClassifier classifier_;
  net::DigestEngine engine_;
  core::PathStateSoA state_;
  std::vector<net::PathId> path_ids_;
  DataPlaneOps ops_;
  std::uint64_t unknown_ = 0;
  LifecycleConfig lifecycle_;
  LifecycleReport lifecycle_totals_;
};

/// Bytes of open-receipt state per path in a hardware monitoring cache
/// (PathID reference 4 B + AggID 8 B + PktCnt 4 B + open/close times 4 B):
/// the paper rounds the same inventory to "roughly 20 bytes".  The
/// software layout spends sizeof(core::PathHot) == 32 B (full-width
/// timestamps and the buffer/ring cursors) — modeled_cache_bytes()
/// reports that measured figure.
inline constexpr std::size_t kOpenReceiptBytes = 20;
/// Bytes per temp-buffer record: PktID 4 B + Time 3 B (§7.1).
inline constexpr std::size_t kTempRecordBytes = 7;

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_MONITORING_CACHE_HPP
