#include "collector/placement.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::collector {

std::size_t online_cpus() noexcept {
#if defined(__linux__)
  // The affinity mask, not the machine: a container pinned to 2 of 64
  // cores should shard-pin within its 2.
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<std::size_t>(n);
#endif
  return 1;
}

std::size_t l2_cache_bytes() noexcept {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long n = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (n > 0) return static_cast<std::size_t>(n);
#endif
  return 0;
}

std::size_t resolve_queue_capacity(std::size_t requested,
                                   std::size_t batch_hint_packets) noexcept {
  if (requested != 0) return requested;
  constexpr std::size_t kDefault = 256;
  const std::size_t l2 = l2_cache_bytes();
  if (l2 == 0 || batch_hint_packets == 0) return kDefault;
  // One in-flight batch carries the packets plus their timestamps; aim the
  // queue's total payload at one L2 so a full queue is a warm working set,
  // not a DRAM backlog.
  const std::size_t batch_bytes =
      batch_hint_packets * (sizeof(net::Packet) + sizeof(net::Timestamp));
  return std::clamp<std::size_t>(l2 / batch_bytes, 16, 1024);
}

int pin_current_thread(std::size_t cpu_index) noexcept {
#if defined(__linux__)
  // Map the index onto the process's allowed CPUs in ascending order, so
  // round-robin pinning spreads over what the container actually grants.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return -1;
  const int count = CPU_COUNT(&allowed);
  if (count <= 0) return -1;
  int target = static_cast<int>(cpu_index % static_cast<std::size_t>(count));
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (target-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return -1;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) != 0) {
    return -1;
  }
  return current_cpu();
#else
  (void)cpu_index;
  return -1;
#endif
}

int current_cpu() noexcept {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace vpm::collector
