// The sharded multi-core collector.
//
// A single MonitoringCache tops out at a few Mpps on one core; a 100 Gbps
// line needs several cores' worth of collector.  Paths are independent
// (every receipt is per-path state), so the scaling move is shared-nothing
// sharding by path key:
//
//   ingest (producers) --route by key--> SPSC queues --> shard workers
//       each worker owns ONE MonitoringCache over its subset of paths
//   control plane: per-shard drains merged into one stream ordered by
//       global path index (exactly the single-threaded drain order).
//
// Invariants the equivalence suite pins down:
//   * every path key maps to exactly one shard (pure function of the key
//     and the shard count — stable across table rebuilds and resizes);
//   * a path's packets traverse one FIFO queue, so each per-path monitor
//     sees the same observation sequence the single-threaded cache would,
//     and per-path receipts are byte-identical;
//   * the merged drain is ascending by global path index, so the full
//     receipt stream is byte-identical to a single MonitoringCache drain
//     over the same path table, for any shard count and batch slicing.
//
// Threading model.  Two ingest modes share the routing logic:
//   * synchronous — observe()/observe_batch() route and dispatch on the
//     caller's thread (no workers, no queues); useful for tests, tools,
//     and single-core deployments;
//   * threaded — start(P) spawns one worker per shard and one bounded
//     SPSC queue per (producer, shard) pair; up to P producer threads
//     call feed(p, ...) concurrently (each with its own producer index).
//     Determinism of the merged output additionally requires that each
//     path's traffic arrives through one producer, since batches from
//     different producers interleave at the shard arbitrarily.
// Control-plane calls (drain, stats) require the workers to be stopped.
#ifndef VPM_COLLECTOR_SHARDED_COLLECTOR_HPP
#define VPM_COLLECTOR_SHARDED_COLLECTOR_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/placement.hpp"
#include "collector/spsc_queue.hpp"
#include "core/receipt_merge.hpp"
#include "net/packet.hpp"
#include "net/prefix.hpp"

namespace vpm::collector {

class ShardedCollector {
 public:
  struct Config {
    /// Per-shard cache configuration (protocol/tuning/hop identity are
    /// identical across shards — sharding must not change the protocol).
    MonitoringCache::Config cache;
    std::size_t shard_count = 1;
    /// Bounded batches per (producer, shard) queue; producers spin-wait
    /// (backpressure) when a queue fills.  0 = auto-size from the per-core
    /// L2 (see placement.hpp resolve_queue_capacity).
    std::size_t queue_capacity = 256;
    /// Producer-side handoff coalescing: when nonzero, feed() accumulates
    /// routed packets per (producer, shard) and enqueues only once a
    /// shard's pending slice reaches this many packets — small feed()
    /// calls stop costing one queue hop per shard each.  Producers must
    /// call flush() before wait_idle(); stop() flushes any remainder.
    /// 0 = enqueue every feed() immediately (the historical behavior).
    std::size_t handoff_batch_packets = 0;
    /// Worker pinning and NUMA first-touch knobs (see placement.hpp).
    PlacementConfig placement;
  };

  /// Partitions `paths` across shards by key hash and builds one
  /// MonitoringCache per non-empty shard.  Path indices reported by
  /// observe()/drain() are GLOBAL indices into `paths`, matching what a
  /// single MonitoringCache over the same span would report.  Throws
  /// std::invalid_argument on zero shards, empty/mixed-length/duplicate
  /// paths (same validation as MonitoringCache).
  ShardedCollector(Config cfg, std::span<const net::PrefixPair> paths);
  ~ShardedCollector();

  ShardedCollector(const ShardedCollector&) = delete;
  ShardedCollector& operator=(const ShardedCollector&) = delete;

  // --- shard routing -----------------------------------------------------

  /// The shard a path key routes to: a pure function of (key, shard
  /// count), independent of the path table, so routing never moves a path
  /// when tables are rebuilt or grown.  The mixer is deliberately distinct
  /// from PathClassifier's slot hash — sharing bits would cluster each
  /// shard's keys into every N-th classifier slot.
  [[nodiscard]] static std::size_t shard_of_key(std::uint64_t key,
                                                std::size_t shard_count)
      noexcept {
    // splitmix64 finalizer: full-avalanche 64 -> 64 mix.
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shard_count);
  }

  /// Routing for one packet (masked header -> key -> shard).
  [[nodiscard]] std::size_t shard_of(const net::PacketHeader& h) const
      noexcept {
    return shard_of_key(key_of(h), shards_.size());
  }
  /// The packet's 64-bit path key under this collector's prefix masks
  /// (one packing definition, shared with the classifier).
  [[nodiscard]] std::uint64_t key_of(const net::PacketHeader& h) const
      noexcept {
    return PathClassifier::key_of(h, src_mask_, dst_mask_);
  }

  // --- synchronous ingest (no workers running) ---------------------------

  /// Route and observe one packet on the caller's thread.  Returns the
  /// GLOBAL path index, or PathClassifier::npos for unknown traffic.
  /// Throws std::logic_error if workers are running.
  std::size_t observe(const net::Packet& p, net::Timestamp when);

  /// Route a batch to the shard caches on the caller's thread.  Same
  /// semantics as MonitoringCache::observe_batch (the empty `when`
  /// overload uses each packet's origin_time).
  void observe_batch(std::span<const net::Packet> packets,
                     std::span<const net::Timestamp> when);
  void observe_batch(std::span<const net::Packet> packets);

  // --- threaded ingest ---------------------------------------------------

  /// Spawn one worker thread per shard and one SPSC queue per
  /// (producer, shard).  Up to `producer_count` threads may then call
  /// feed() concurrently, each with a distinct producer index.
  void start(std::size_t producer_count = 1);

  /// Route `packets` and enqueue one batch per destination shard (or, with
  /// handoff_batch_packets set, accumulate and enqueue full chunks).  Safe
  /// to call concurrently from different producer indices; a producer
  /// index must not be used by two threads at once (the queues are SPSC).
  /// Blocks (spin/yield) on full queues — bounded-memory backpressure.
  void feed(std::size_t producer, std::span<const net::Packet> packets,
            std::span<const net::Timestamp> when);
  void feed(std::size_t producer, std::span<const net::Packet> packets);

  /// Enqueue this producer's coalesced remainders (no-op when
  /// handoff_batch_packets == 0 or nothing is pending).  Same threading
  /// contract as feed(): one thread per producer index.
  void flush(std::size_t producer);

  /// Block until every enqueued batch has been consumed and applied.
  /// (Quiescence barrier for benchmarks and periodic control-plane work;
  /// callers must not feed concurrently while waiting.)  Coalesced
  /// not-yet-enqueued packets are invisible here: producers flush() first.
  void wait_idle() const;

  /// Close all queues, let workers drain them, and join.  Idempotent.
  /// The caller must have synchronized with every producer thread first
  /// (joined it, or observed its completion through an acquire/release
  /// channel): close() marks end-of-stream, and a close that does not
  /// happen-after the final push could let a worker conclude
  /// end-of-stream with that push still invisible to it.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

  // --- control plane (workers must be stopped) ---------------------------

  /// Drain every shard and merge into one stream ascending by global path
  /// index — byte-identical to MonitoringCache::drain_all over the same
  /// path table — streaming each merged path drain into `sink` as the
  /// k-way merge (StreamingDrainMerge, one in-flight drain per shard)
  /// produces it, so the whole 100k-path drain never materializes.  This
  /// is the primary drain API; the vector overload is a VectorSink
  /// adapter over it.  Throws std::logic_error if workers are running.
  void drain(core::ReceiptSink& sink, bool flush_open = false);
  /// Materialized drain (legacy form): collects the sink stream.
  [[nodiscard]] std::vector<core::IndexedPathDrain> drain(
      bool flush_open = false);

  /// Streaming variant of drain(): returns a lazy merge whose sources pull
  /// ONE path drain per shard at a time (constant memory in the path
  /// count), yielding the exact stream drain() materializes — so the
  /// processor module can ship dissemination batches while later paths
  /// are still draining.  Constructing the merge consumes nothing (an
  /// abandoned merge loses no receipts); each next() drains shard state
  /// lazily and destructively, so the collector must stay alive and
  /// stopped until the merge is dropped or exhausted.  Throws
  /// std::logic_error if workers are running.
  [[nodiscard]] core::StreamingDrainMerge drain_stream(
      bool flush_open = false);

  /// One epoch-lifecycle pass across every shard, in ascending GLOBAL
  /// path order: each shard cache's idle paths are evicted (their drains
  /// stream into `sink` with the global path index, same begin/.../end
  /// contract as drain()), then each shard compacts if its garbage
  /// crossed the watermark.  Throws std::logic_error if workers are
  /// running.
  LifecycleReport run_lifecycle(net::Timestamp now, core::ReceiptSink& sink);

  /// Summed arena accounting across shard caches (workers must be
  /// stopped, like drain).
  [[nodiscard]] std::size_t arena_bytes() const;
  [[nodiscard]] std::size_t arena_live_bytes() const;
  [[nodiscard]] std::size_t arena_garbage_bytes() const;

  // --- stats (workers must be stopped, like drain) -----------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The resolved per-(producer, shard) queue depth (after L2 auto-size).
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_capacity_;
  }
  /// CPU each shard worker reported running on after the last start()
  /// (post-pinning when placement.pin_workers; -1 = unknown/never
  /// started).  Throws std::logic_error while workers run.
  [[nodiscard]] std::vector<int> worker_cpus() const;
  [[nodiscard]] std::size_t path_count() const noexcept {
    return path_location_.size();
  }
  [[nodiscard]] std::size_t shard_path_count(std::size_t shard) const {
    return shards_.at(shard).global_index.size();
  }
  /// Merged data-plane cost counters across all shards.  Throws
  /// std::logic_error while workers run (the counters are plain per-shard
  /// state; reading them concurrently with workers would race).
  [[nodiscard]] DataPlaneOps ops() const;
  /// Total packets that matched no path, across all shards.  Throws
  /// std::logic_error while workers run.
  [[nodiscard]] std::uint64_t unknown_path_packets() const;
  /// The shard's cache, or nullptr for a shard that owns no paths (or, in
  /// numa_first_touch mode, one whose cache has not been built yet).  The
  /// returned cache is worker-owned state: do not read it while workers
  /// run.
  [[nodiscard]] const MonitoringCache* shard_cache(std::size_t shard) const {
    return shards_.at(shard).cache.get();
  }

 private:
  /// One routed slice in flight from a producer to a shard worker.
  struct Batch {
    std::vector<net::Packet> packets;
    std::vector<net::Timestamp> when;
  };

  struct Shard {
    /// Null when no path hashes to this shard; unknown traffic routed
    /// here is still counted.
    std::unique_ptr<MonitoringCache> cache;
    /// Shard-local path index -> global path index (ascending).
    std::vector<std::size_t> global_index;
    /// Unknown packets routed to a cache-less shard (cache-ful shards
    /// count their own unknowns).
    std::uint64_t unknown = 0;
  };

  struct PathLocation {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };

  void route_into_staging(std::span<const net::Packet> packets,
                          std::span<const net::Timestamp> when,
                          std::vector<Batch>& staging) const;
  /// Clears (capacity preserved) and returns the synchronous-mode staging
  /// buffer — sync ingest is a hot path and must not allocate per batch.
  std::vector<Batch>& sync_staging();
  /// Shared body of the two synchronous overloads; an empty `when` means
  /// "each packet's origin_time" (mirrors MonitoringCache).
  void observe_batch_impl(std::span<const net::Packet> packets,
                          std::span<const net::Timestamp> when);
  void apply_batch(std::size_t shard_index,
                   std::span<const net::Packet> packets,
                   std::span<const net::Timestamp> when);
  /// Build the shard's cache from its deferred path subset if it hasn't
  /// been built yet (numa_first_touch defers construction to the thread
  /// that first applies work — the pinned worker in threaded mode).  Each
  /// shard's cache is only ever ensured by the thread currently owning
  /// that shard (its worker, or the control plane while stopped).
  void ensure_shard_cache(std::size_t shard_index);
  void push_batch(std::size_t producer, std::size_t shard, Batch&& b);
  void worker_loop(std::size_t shard);

  std::uint32_t src_mask_ = 0;
  std::uint32_t dst_mask_ = 0;
  std::vector<Shard> shards_;
  std::vector<PathLocation> path_location_;  ///< by global path index
  MonitoringCache::Config cache_cfg_;
  PlacementConfig placement_;
  std::size_t queue_capacity_ = 256;
  std::size_t handoff_batch_ = 0;
  /// Per-shard path subsets awaiting first-touch construction (cleared as
  /// each shard's cache is built; empty when numa_first_touch is off).
  std::vector<std::vector<net::PrefixPair>> deferred_paths_;
  /// Reused by synchronous observe_batch (steady state never allocates).
  std::vector<Batch> sync_staging_;

  // Threaded-mode state (empty while not running).
  // queues_[producer][shard]; each queue is SPSC: producer thread
  // `producer` pushes, worker thread `shard` pops.
  std::vector<std::vector<std::unique_ptr<SpscQueue<Batch>>>> queues_;
  /// pending_[producer][shard]: handoff-coalescing accumulators, each
  /// owned by its producer thread between feed() and flush().
  std::vector<std::vector<Batch>> pending_;
  /// CPU each worker reported after pinning (workers write their own slot
  /// at startup; read only after join — see worker_cpus()).
  std::vector<int> worker_cpus_;
  std::vector<std::thread> workers_;
  bool running_ = false;
  alignas(64) std::atomic<std::uint64_t> pushed_batches_{0};
  alignas(64) std::atomic<std::uint64_t> processed_batches_{0};
};

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_SHARDED_COLLECTOR_HPP
