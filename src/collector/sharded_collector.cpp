#include "collector/sharded_collector.hpp"

#include <stdexcept>
#include <utility>

namespace vpm::collector {

ShardedCollector::ShardedCollector(Config cfg,
                                   std::span<const net::PrefixPair> paths)
    : cache_cfg_(cfg.cache),
      placement_(cfg.placement),
      queue_capacity_(resolve_queue_capacity(
          cfg.queue_capacity,
          cfg.handoff_batch_packets != 0 ? cfg.handoff_batch_packets : 64)),
      handoff_batch_(cfg.handoff_batch_packets) {
  if (cfg.shard_count == 0) {
    throw std::invalid_argument("ShardedCollector: zero shards");
  }
  if (paths.empty()) {
    throw std::invalid_argument("ShardedCollector: no paths");
  }
  // Validate length uniformity globally: per-shard classifiers only see
  // their subset, so a cross-shard mismatch would otherwise slip through.
  const std::uint8_t src_len = paths.front().source.length();
  const std::uint8_t dst_len = paths.front().destination.length();
  for (const net::PrefixPair& p : paths) {
    if (p.source.length() != src_len || p.destination.length() != dst_len) {
      throw std::invalid_argument(
          "ShardedCollector requires uniform prefix lengths");
    }
  }
  src_mask_ = paths.front().source.mask();
  dst_mask_ = paths.front().destination.mask();

  // Partition paths by key hash.  Per-shard subsets keep the global
  // relative order, so shard-local drains are ascending in global index.
  shards_.resize(cfg.shard_count);
  std::vector<std::vector<net::PrefixPair>> shard_paths(cfg.shard_count);
  path_location_.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::size_t s =
        shard_of_key(PathClassifier::key_of(paths[i]), cfg.shard_count);
    path_location_[i] = PathLocation{
        .shard = static_cast<std::uint32_t>(s),
        .local = static_cast<std::uint32_t>(shard_paths[s].size())};
    shard_paths[s].push_back(paths[i]);
    shards_[s].global_index.push_back(i);
  }
  if (placement_.numa_first_touch) {
    // Defer construction: each shard's cache is first touched by the
    // thread that first applies work to it (the pinned worker after
    // start(); see ensure_shard_cache).  Validate the per-shard tables
    // now, though — construction errors must not move to a worker thread.
    for (std::size_t s = 0; s < cfg.shard_count; ++s) {
      if (shard_paths[s].empty()) continue;
      (void)MonitoringCache(cfg.cache, shard_paths[s]);
    }
    deferred_paths_ = std::move(shard_paths);
    return;
  }
  for (std::size_t s = 0; s < cfg.shard_count; ++s) {
    if (shard_paths[s].empty()) continue;  // cache stays null
    shards_[s].cache =
        std::make_unique<MonitoringCache>(cfg.cache, shard_paths[s]);
  }
}

void ShardedCollector::ensure_shard_cache(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.cache || shard.global_index.empty()) return;
  shard.cache = std::make_unique<MonitoringCache>(
      cache_cfg_, deferred_paths_[shard_index]);
  // Free the construction copy: the classifier owns its own table now.
  deferred_paths_[shard_index] = {};
}

ShardedCollector::~ShardedCollector() { stop(); }

// --- synchronous ingest ---------------------------------------------------

std::size_t ShardedCollector::observe(const net::Packet& p,
                                      net::Timestamp when) {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: synchronous observe while workers run");
  }
  const std::size_t s = shard_of(p.header);
  Shard& shard = shards_[s];
  if (shard.global_index.empty()) {
    ++shard.unknown;
    return PathClassifier::npos;
  }
  ensure_shard_cache(s);
  const std::size_t local = shard.cache->observe(p, when);
  if (local == PathClassifier::npos) return PathClassifier::npos;
  return shard.global_index[local];
}

void ShardedCollector::route_into_staging(
    std::span<const net::Packet> packets,
    std::span<const net::Timestamp> when,
    std::vector<Batch>& staging) const {
  const bool use_origin_time = when.empty();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    Batch& b = staging[shard_of(packets[i].header)];
    b.packets.push_back(packets[i]);
    b.when.push_back(use_origin_time ? packets[i].origin_time : when[i]);
  }
}

void ShardedCollector::apply_batch(std::size_t shard_index,
                                   std::span<const net::Packet> packets,
                                   std::span<const net::Timestamp> when) {
  Shard& shard = shards_[shard_index];
  if (shard.global_index.empty()) {
    shard.unknown += packets.size();
    return;
  }
  // First batch in numa_first_touch mode: the applying thread (the pinned
  // worker, in threaded mode) constructs the cache, so its slot table and
  // arenas are first touched on the core/node that will run them.
  ensure_shard_cache(shard_index);
  shard.cache->observe_batch(packets, when);
}

std::vector<ShardedCollector::Batch>& ShardedCollector::sync_staging() {
  sync_staging_.resize(shards_.size());
  for (Batch& b : sync_staging_) {
    b.packets.clear();  // capacity retained across batches
    b.when.clear();
  }
  return sync_staging_;
}

void ShardedCollector::observe_batch_impl(
    std::span<const net::Packet> packets,
    std::span<const net::Timestamp> when) {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: synchronous observe_batch while workers run");
  }
  std::vector<Batch>& staging = sync_staging();
  route_into_staging(packets, when, staging);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    apply_batch(s, staging[s].packets, staging[s].when);
  }
}

void ShardedCollector::observe_batch(std::span<const net::Packet> packets,
                                     std::span<const net::Timestamp> when) {
  if (packets.size() != when.size()) {
    throw std::invalid_argument("observe_batch: packet/timestamp mismatch");
  }
  observe_batch_impl(packets, when);
}

void ShardedCollector::observe_batch(std::span<const net::Packet> packets) {
  observe_batch_impl(packets, {});
}

// --- threaded ingest ------------------------------------------------------

void ShardedCollector::start(std::size_t producer_count) {
  if (running_) {
    throw std::logic_error("ShardedCollector: already started");
  }
  if (producer_count == 0) {
    throw std::invalid_argument("ShardedCollector: zero producers");
  }
  pushed_batches_.store(0, std::memory_order_relaxed);
  processed_batches_.store(0, std::memory_order_relaxed);
  queues_.resize(producer_count);
  for (auto& per_shard : queues_) {
    per_shard.clear();
    per_shard.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      per_shard.push_back(std::make_unique<SpscQueue<Batch>>(queue_capacity_));
    }
  }
  if (handoff_batch_ != 0) {
    pending_.clear();
    pending_.resize(producer_count);
    for (auto& per_shard : pending_) per_shard.resize(shards_.size());
  }
  worker_cpus_.assign(shards_.size(), -1);
  running_ = true;
  workers_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

void ShardedCollector::push_batch(std::size_t producer, std::size_t shard,
                                  Batch&& b) {
  // Count before the push: a worker may consume the batch immediately,
  // and processed must never be observed above pushed.
  pushed_batches_.fetch_add(1, std::memory_order_relaxed);
  queues_[producer][shard]->push(std::move(b));
}

void ShardedCollector::feed(std::size_t producer,
                            std::span<const net::Packet> packets,
                            std::span<const net::Timestamp> when) {
  if (!running_) {
    throw std::logic_error("ShardedCollector: feed before start");
  }
  if (!when.empty() && packets.size() != when.size()) {
    throw std::invalid_argument("feed: packet/timestamp mismatch");
  }
  (void)queues_.at(producer);  // validate the producer index
  if (handoff_batch_ != 0) {
    // Coalescing handoff: accumulate routed packets per shard and enqueue
    // only full chunks, so many small feed() calls cost one queue hop per
    // CHUNK instead of one per (call, shard).
    std::vector<Batch>& pending = pending_[producer];
    route_into_staging(packets, when, pending);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (pending[s].packets.size() < handoff_batch_) continue;
      push_batch(producer, s, std::move(pending[s]));
      pending[s] = Batch{};
    }
    return;
  }
  // The batches are moved into the queues (the worker frees them), so a
  // reusable staging pool would need a buffer-return channel; instead
  // pre-size each shard's vectors once to skip the push_back regrowth.
  std::vector<Batch> staging(shards_.size());
  const std::size_t expect = packets.size() / shards_.size() + 16;
  for (Batch& b : staging) {
    b.packets.reserve(expect);
    b.when.reserve(expect);
  }
  route_into_staging(packets, when, staging);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (staging[s].packets.empty()) continue;
    push_batch(producer, s, std::move(staging[s]));
  }
}

void ShardedCollector::feed(std::size_t producer,
                            std::span<const net::Packet> packets) {
  feed(producer, packets, {});
}

void ShardedCollector::flush(std::size_t producer) {
  if (!running_) {
    throw std::logic_error("ShardedCollector: flush before start");
  }
  if (handoff_batch_ == 0) return;
  std::vector<Batch>& pending = pending_.at(producer);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (pending[s].packets.empty()) continue;
    push_batch(producer, s, std::move(pending[s]));
    pending[s] = Batch{};
  }
}

void ShardedCollector::wait_idle() const {
  while (processed_batches_.load(std::memory_order_acquire) !=
         pushed_batches_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void ShardedCollector::worker_loop(std::size_t shard_index) {
  if (placement_.pin_workers) {
    worker_cpus_[shard_index] = pin_current_thread(shard_index);
  } else {
    worker_cpus_[shard_index] = current_cpu();
  }
  // First-touch the shard's state from the (possibly just-pinned) worker
  // before consuming, so construction cost doesn't land on the first
  // batch's latency.
  if (placement_.numa_first_touch) ensure_shard_cache(shard_index);
  std::vector<SpscQueue<Batch>*> inputs;
  inputs.reserve(queues_.size());
  for (auto& per_shard : queues_) inputs.push_back(per_shard[shard_index].get());

  std::vector<bool> done(inputs.size(), false);
  std::size_t remaining = inputs.size();
  Batch b;
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t q = 0; q < inputs.size(); ++q) {
      if (done[q]) continue;
      // Order matters: load closed BEFORE the pop attempt, so a false
      // "empty" racing a late push can never be mistaken for the end.
      const bool was_closed = inputs[q]->closed();
      if (inputs[q]->try_pop(b)) {
        apply_batch(shard_index, b.packets, b.when);
        processed_batches_.fetch_add(1, std::memory_order_release);
        progress = true;
      } else if (was_closed) {
        done[q] = true;
        --remaining;
      }
    }
    if (!progress && remaining > 0) std::this_thread::yield();
  }
}

void ShardedCollector::stop() {
  if (!running_) return;
  // Enqueue any coalesced remainders first — the caller has synchronized
  // with every producer (stop()'s contract), so the pending accumulators
  // are quiescent here and a close must not strand their packets.
  for (std::size_t p = 0; p < pending_.size(); ++p) flush(p);
  pending_.clear();
  for (auto& per_shard : queues_) {
    for (auto& q : per_shard) q->close();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  queues_.clear();
  running_ = false;
}

std::vector<int> ShardedCollector::worker_cpus() const {
  if (running_) {
    throw std::logic_error("ShardedCollector: worker_cpus while workers run");
  }
  return worker_cpus_;
}

// --- control plane --------------------------------------------------------

void ShardedCollector::drain(core::ReceiptSink& sink, bool flush_open) {
  core::StreamingDrainMerge merge = drain_stream(flush_open);
  while (std::optional<core::IndexedPathDrain> d = merge.next()) {
    core::emit_drain(sink, d->path, std::move(d->drain));
  }
}

std::vector<core::IndexedPathDrain> ShardedCollector::drain(bool flush_open) {
  core::VectorSink sink;
  drain(sink, flush_open);
  return std::move(sink).take();
}

core::StreamingDrainMerge ShardedCollector::drain_stream(bool flush_open) {
  if (running_) {
    throw std::logic_error("ShardedCollector: drain_stream while workers run");
  }
  std::vector<core::DrainSource> sources;
  sources.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    // A deferred (never-touched) cache still owes empty per-path drains.
    ensure_shard_cache(s);
  }
  for (Shard& shard : shards_) {
    if (!shard.cache) continue;  // unknown-only shard: nothing to stream
    // Each source walks its shard's paths in (ascending) local order,
    // draining ONE path per pull and tagging it with the global index.
    sources.push_back([&shard, flush_open, local = std::size_t{0}]() mutable
                      -> std::optional<core::IndexedPathDrain> {
      if (local == shard.global_index.size()) return std::nullopt;
      const std::size_t i = local++;
      return core::IndexedPathDrain{
          .path = shard.global_index[i],
          .drain = shard.cache->drain_path(i, flush_open)};
    });
  }
  return core::StreamingDrainMerge(std::move(sources));
}

namespace {

/// Forwards a shard-local eviction drain, rewriting begin_path's
/// shard-local index to the shard's global index.
class GlobalIndexSink final : public core::ReceiptSink {
 public:
  GlobalIndexSink(core::ReceiptSink& inner,
                  const std::vector<std::size_t>& global_index)
      : inner_(inner), global_index_(global_index) {}

  void begin_path(std::size_t path_index, const net::PathId& id) override {
    inner_.begin_path(global_index_[path_index], id);
  }
  void on_samples(core::SampleReceipt samples) override {
    inner_.on_samples(std::move(samples));
  }
  void on_aggregate(core::AggregateReceipt aggregate) override {
    inner_.on_aggregate(std::move(aggregate));
  }
  void end_path() override { inner_.end_path(); }

 private:
  core::ReceiptSink& inner_;
  const std::vector<std::size_t>& global_index_;
};

}  // namespace

LifecycleReport ShardedCollector::run_lifecycle(net::Timestamp now,
                                                core::ReceiptSink& sink) {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: run_lifecycle while workers run");
  }
  LifecycleReport report;
  for (std::size_t s = 0; s < shards_.size(); ++s) ensure_shard_cache(s);
  // Per-path eviction in ascending GLOBAL order (the drain-order
  // contract), interleaving across shards.
  for (std::size_t g = 0; g < path_location_.size(); ++g) {
    const PathLocation loc = path_location_[g];
    Shard& shard = shards_[loc.shard];
    GlobalIndexSink remap(sink, shard.global_index);
    const MonitoringCache::EvictResult r =
        shard.cache->evict_path_if_idle(loc.local, now, remap);
    if (r.evicted) {
      ++report.evicted_paths;
      report.dropped_buffered_records += r.dropped_buffered;
    }
  }
  for (Shard& shard : shards_) {
    if (!shard.cache) continue;
    const MonitoringCache::DecayResult d = shard.cache->run_decay_pass();
    report.decayed_slices += d.halved_slices;
    report.decayed_arena_bytes += d.released_bytes;
    report.decayed_emitted_vectors += d.halved_emitted;
    report.decayed_emitted_bytes += d.released_emitted_bytes;
  }
  for (Shard& shard : shards_) {
    if (shard.cache && shard.cache->compaction_due()) {
      report.reclaimed_arena_bytes += shard.cache->compact_arenas();
      ++report.compactions;
    }
  }
  return report;
}

std::size_t ShardedCollector::arena_bytes() const {
  if (running_) {
    throw std::logic_error("ShardedCollector: arena_bytes while workers run");
  }
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.cache) total += s.cache->state().arena_bytes();
  }
  return total;
}

std::size_t ShardedCollector::arena_live_bytes() const {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: arena_live_bytes while workers run");
  }
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.cache) total += s.cache->arena_live_bytes();
  }
  return total;
}

std::size_t ShardedCollector::arena_garbage_bytes() const {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: arena_garbage_bytes while workers run");
  }
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.cache) total += s.cache->arena_garbage_bytes();
  }
  return total;
}

DataPlaneOps ShardedCollector::ops() const {
  if (running_) {
    throw std::logic_error("ShardedCollector: ops() while workers run");
  }
  DataPlaneOps total;
  for (const Shard& s : shards_) {
    if (s.cache) total += s.cache->ops();
  }
  return total;
}

std::uint64_t ShardedCollector::unknown_path_packets() const {
  if (running_) {
    throw std::logic_error(
        "ShardedCollector: unknown_path_packets() while workers run");
  }
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.unknown;
    if (s.cache) total += s.cache->unknown_path_packets();
  }
  return total;
}

}  // namespace vpm::collector
