// CPU/topology placement for the sharded collector: worker pinning,
// L2-aware queue sizing, and the NUMA first-touch construction hook.
//
// A shared-nothing shard scales only when its working set stays in the
// cache hierarchy next to the core running it.  Three placement levers:
//
//   * pin_workers — pin shard worker threads round-robin over the CPUs in
//     the process affinity mask, so a shard's PathSlot/arena lines stop
//     migrating between cores on every reschedule;
//   * queue_capacity = 0 — auto-size each (producer, shard) SPSC queue so
//     its in-flight packet payload roughly fits the per-core L2, instead
//     of a fixed depth that is either a cache-thrashing backlog (deep) or
//     a producer stall (shallow);
//   * numa_first_touch — defer each shard cache's construction to the
//     worker thread that will run it, so the kernel's first-touch policy
//     places the slot table and arenas on the worker's NUMA node rather
//     than the constructor thread's.
//
// Everything here degrades gracefully: on kernels without the relevant
// syscalls/sysconf values the helpers return conservative defaults and
// pinning reports -1 (not pinned) instead of failing.
#ifndef VPM_COLLECTOR_PLACEMENT_HPP
#define VPM_COLLECTOR_PLACEMENT_HPP

#include <cstddef>

namespace vpm::collector {

/// Placement knobs for ShardedCollector (see file comment).
struct PlacementConfig {
  /// Pin each shard worker to CPU (shard index mod online CPUs).
  bool pin_workers = false;
  /// Construct each shard's MonitoringCache on its worker thread (first
  /// touch on the owning core/node) instead of in the collector
  /// constructor.  Synchronous use before start() still works: the cache
  /// is then built on the first thread that needs it.
  bool numa_first_touch = false;
};

/// CPUs this process may run on (affinity-mask aware), at least 1.
[[nodiscard]] std::size_t online_cpus() noexcept;

/// Per-core L2 data-cache size in bytes, or 0 when the kernel does not
/// expose it.
[[nodiscard]] std::size_t l2_cache_bytes() noexcept;

/// Resolve an SPSC queue capacity (in batches): a nonzero request passes
/// through; 0 auto-sizes so `capacity x batch_hint_packets` packets of
/// in-flight payload roughly fill one L2 (clamped to [16, 1024]; 256 when
/// the L2 size is unknown).
[[nodiscard]] std::size_t resolve_queue_capacity(
    std::size_t requested, std::size_t batch_hint_packets) noexcept;

/// Pin the calling thread to CPU (cpu_index mod online_cpus()).  Returns
/// the CPU the thread reports running on afterwards, or -1 when pinning
/// is unsupported or failed (the thread keeps its old mask).
int pin_current_thread(std::size_t cpu_index) noexcept;

/// CPU the calling thread is currently running on, or -1 when unknown.
[[nodiscard]] int current_cpu() noexcept;

}  // namespace vpm::collector

#endif  // VPM_COLLECTOR_PLACEMENT_HPP
