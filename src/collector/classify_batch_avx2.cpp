// AVX2 implementation of the classifier phase-A kernel: four packets per
// ymm register (64-bit key lanes), eight per loop iteration.
//
// The Fibonacci hash is a 64x64 multiply keeping the low half, then a
// right shift.  AVX2 has no 64-bit low multiply, so it is assembled from
// the three 32x32 partial products that land in the low 64 bits:
//   lo(x)*lo(C)  +  ((hi(x)*lo(C) + lo(x)*hi(C)) << 32)
// (the hi*hi product only affects bits >= 64).  The shift count is a
// runtime value (depends on table size), so _mm256_srl_epi64 takes it
// from a xmm register.
//
// Compiled with -mavx2 (see CMakeLists); null stub otherwise.
#include "collector/classify_batch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace vpm::collector::detail {
namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

// 64-bit low-half multiply by the golden-ratio constant, 4 lanes wide.
inline __m256i mul_golden64(__m256i x) noexcept {
  const __m256i clo =
      _mm256_set1_epi64x(static_cast<long long>(kGolden & 0xFFFFFFFFull));
  const __m256i chi = _mm256_set1_epi64x(static_cast<long long>(kGolden >> 32));
  const __m256i xhi = _mm256_srli_epi64(x, 32);
  const __m256i t0 = _mm256_mul_epu32(x, clo);    // lo(x)*lo(C), 64-bit
  const __m256i t1 = _mm256_mul_epu32(xhi, clo);  // hi(x)*lo(C)
  const __m256i t2 = _mm256_mul_epu32(x, chi);    // lo(x)*hi(C)
  const __m256i hi = _mm256_add_epi64(t1, t2);
  return _mm256_add_epi64(t0, _mm256_slli_epi64(hi, 32));
}

void hash_slots_avx2_impl(const ClassifyHashParams& cp,
                          const net::Packet* pkts, std::size_t n,
                          std::uint64_t* keys, std::uint32_t* slots) noexcept {
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(cp.shift));

  std::size_t g = 0;
  for (; g + 8 <= n; g += 8) {
    // Scalar key packing (two masked header words per packet) into
    // staging, then two 4-lane multiply-hash rounds.
    alignas(32) std::uint64_t k[8];
    for (int l = 0; l < 8; ++l) {
      const net::PacketHeader& h = pkts[g + l].header;
      k[l] = (static_cast<std::uint64_t>(h.src.value() & cp.src_mask) << 32) |
             (h.dst.value() & cp.dst_mask);
    }
    const __m256i k0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(k + 0));
    const __m256i k1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(k + 4));
    const __m256i s0 = _mm256_srl_epi64(mul_golden64(k0), shift);
    const __m256i s1 = _mm256_srl_epi64(mul_golden64(k1), shift);
    // shift >= 32 leaves each 64-bit lane < 2^32: pack the low words.
    alignas(32) std::uint64_t s[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(s + 0), s0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(s + 4), s1);
    for (int l = 0; l < 8; ++l) {
      keys[g + l] = k[l];
      slots[g + l] = static_cast<std::uint32_t>(s[l]);
    }
  }

  if (g < n) hash_slots_scalar(cp, pkts + g, n - g, keys + g, slots + g);
}

}  // namespace

HashSlotsFn hash_slots_avx2() noexcept { return &hash_slots_avx2_impl; }

}  // namespace vpm::collector::detail

#else  // !defined(__AVX2__)

namespace vpm::collector::detail {

HashSlotsFn hash_slots_avx2() noexcept { return nullptr; }

}  // namespace vpm::collector::detail

#endif  // defined(__AVX2__)
