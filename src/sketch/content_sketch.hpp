// Per-aggregate content sketches: the Section 3.5 extension.
//
// "'Bad' ISP behavior may consist not only of introducing loss and
// unpredictable delay, but also of modifying traffic; the only way to
// detect such behavior is to use a content-processing technique like the
// one proposed in [12], which could be easily incorporated in our
// aggregation component" (§3.5).  This module is that incorporation: a
// second-moment (AMS-style, after Goldberg et al.'s secure sketch) sketch
// of every packet digest in an aggregate.
//
// Each packet id lands in one of `buckets` counters with a +/-1 sign, both
// chosen by seeded hashes.  For two HOPs' sketches of the same aggregate,
// the squared L2 norm of the difference estimates |A \ B| + |B \ A|: a
// dropped packet contributes ~1, an injected one ~1, and a *modified*
// packet ~2 (its old id leaves, its new id arrives).  Comparing that
// estimate against the count-explainable loss separates modification from
// plain loss.
#ifndef VPM_SKETCH_CONTENT_SKETCH_HPP
#define VPM_SKETCH_CONTENT_SKETCH_HPP

#include <cstdint>
#include <vector>

#include "net/digest.hpp"

namespace vpm::sketch {

class ContentSketch {
 public:
  /// Throws std::invalid_argument if buckets == 0.
  explicit ContentSketch(std::size_t buckets);

  void add(net::PacketDigest id) noexcept;

  [[nodiscard]] std::size_t buckets() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] const std::vector<std::int32_t>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::uint64_t items() const noexcept { return items_; }

  /// this - other, counterwise.  Throws std::invalid_argument on size
  /// mismatch (sketch width is a per-link agreement, like MaxDiff).
  [[nodiscard]] ContentSketch difference(const ContentSketch& other) const;

  /// Sum of squared counters: for a difference sketch this estimates the
  /// symmetric difference of the two packet multisets (expectation exact;
  /// variance shrinks with bucket count).
  [[nodiscard]] double squared_norm() const noexcept;

  friend bool operator==(const ContentSketch&, const ContentSketch&) =
      default;

 private:
  std::vector<std::int32_t> counters_;
  std::uint64_t items_ = 0;
};

/// Verdict of comparing two HOPs' sketches of one aligned aggregate.
struct ModificationCheck {
  std::uint64_t up_count = 0;
  std::uint64_t down_count = 0;
  double symmetric_difference = 0.0;  ///< sketch estimate
  /// Estimated packets whose content changed in flight:
  /// (symmetric_difference - |count delta|) / 2, floored at 0.
  double modified_estimate = 0.0;
  /// Flagged when modified_estimate exceeds the detection threshold.
  bool modification_suspected = false;
};

/// Compare sketches for one aggregate observed at both HOPs.  `tolerance`
/// is the absolute packet-count estimate below which we attribute the
/// residual to sketch noise (default suits >= 32 buckets and aggregates
/// up to ~100k packets).
[[nodiscard]] ModificationCheck check_modification(
    const ContentSketch& up, std::uint64_t up_count,
    const ContentSketch& down, std::uint64_t down_count,
    double tolerance = 4.0);

}  // namespace vpm::sketch

#endif  // VPM_SKETCH_CONTENT_SKETCH_HPP
