#include "sketch/sketch_aggregator.hpp"

#include <unordered_map>

namespace vpm::sketch {

void SketchAggregator::observe(const net::Packet& p) {
  const net::PacketDigest id = engine_.packet_id(p);
  if (open_.has_value() && engine_.cut_value(p) > cut_threshold_) {
    closed_.push_back(std::move(*open_));
    open_.reset();
  }
  if (!open_) {
    open_ = SketchReceipt{.agg = core::AggId{id, id},
                          .packet_count = 0,
                          .sketch = ContentSketch{buckets_}};
  }
  open_->agg.last = id;
  ++open_->packet_count;
  open_->sketch.add(id);
}

std::vector<SketchReceipt> SketchAggregator::take_closed() {
  std::vector<SketchReceipt> out;
  out.swap(closed_);
  return out;
}

std::optional<SketchReceipt> SketchAggregator::flush_open() {
  std::optional<SketchReceipt> out;
  out.swap(open_);
  return out;
}

ModificationReport check_path_modification(std::span<const SketchReceipt> up,
                                           std::span<const SketchReceipt> down,
                                           double tolerance) {
  ModificationReport report;
  std::unordered_map<net::PacketDigest, const SketchReceipt*> down_by_first;
  down_by_first.reserve(down.size() * 2);
  for (const SketchReceipt& r : down) down_by_first.emplace(r.agg.first, &r);

  for (const SketchReceipt& u : up) {
    const auto it = down_by_first.find(u.agg.first);
    if (it == down_by_first.end()) continue;
    const SketchReceipt& d = *it->second;
    if (u.sketch.buckets() != d.sketch.buckets()) continue;
    ModificationCheck check = check_modification(
        u.sketch, u.packet_count, d.sketch, d.packet_count, tolerance);
    ++report.aggregates_checked;
    if (check.modification_suspected) ++report.aggregates_suspected;
    report.total_modified_estimate += check.modified_estimate;
    report.details.push_back(check);
  }
  return report;
}

}  // namespace vpm::sketch
