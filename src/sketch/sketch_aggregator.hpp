// SketchAggregator: the aggregation component with content sketches
// "incorporated" (§3.5).  It cuts aggregates with the exact same rule as
// core::Aggregator (same cut digests, same thresholds => same boundaries,
// so sketch receipts align with aggregate receipts for free) and attaches
// a ContentSketch per aggregate.
#ifndef VPM_SKETCH_SKETCH_AGGREGATOR_HPP
#define VPM_SKETCH_SKETCH_AGGREGATOR_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "sketch/content_sketch.hpp"

namespace vpm::sketch {

/// Receipt extension: one sketch per aggregate, identified like an
/// AggregateReceipt by its first/last packet ids.
struct SketchReceipt {
  core::AggId agg;
  std::uint32_t packet_count = 0;
  ContentSketch sketch{32};
};

class SketchAggregator {
 public:
  /// `cut_threshold` must equal the paired core::Aggregator's so both
  /// produce identical boundaries.  Throws std::invalid_argument if
  /// buckets == 0 (via ContentSketch).
  SketchAggregator(const net::DigestEngine& engine,
                   std::uint32_t cut_threshold, std::size_t buckets)
      : engine_(engine), cut_threshold_(cut_threshold), buckets_(buckets) {
    (void)ContentSketch{buckets};  // validate eagerly
  }

  void observe(const net::Packet& p);

  [[nodiscard]] std::vector<SketchReceipt> take_closed();
  [[nodiscard]] std::optional<SketchReceipt> flush_open();

 private:
  net::DigestEngine engine_;
  std::uint32_t cut_threshold_;
  std::size_t buckets_;
  std::optional<SketchReceipt> open_;
  std::vector<SketchReceipt> closed_;
};

/// Per-aggregate modification verdicts across a domain or link: receipts
/// are paired by their opening packet id (unmatched ones are skipped —
/// the count-based join already covers those).
struct ModificationReport {
  std::size_t aggregates_checked = 0;
  std::size_t aggregates_suspected = 0;
  double total_modified_estimate = 0.0;
  std::vector<ModificationCheck> details;
  [[nodiscard]] bool clean() const noexcept {
    return aggregates_suspected == 0;
  }
};

[[nodiscard]] ModificationReport check_path_modification(
    std::span<const SketchReceipt> up, std::span<const SketchReceipt> down,
    double tolerance = 4.0);

}  // namespace vpm::sketch

#endif  // VPM_SKETCH_SKETCH_AGGREGATOR_HPP
