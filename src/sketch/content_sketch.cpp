#include "sketch/content_sketch.hpp"

#include <cmath>
#include <stdexcept>

#include "net/bob_hash.hpp"

namespace vpm::sketch {
namespace {

constexpr std::uint32_t kBucketSeed = 0x534b4231u;  // "SKB1"
constexpr std::uint32_t kSignSeed = 0x534b5347u;    // "SKSG"

}  // namespace

ContentSketch::ContentSketch(std::size_t buckets) : counters_(buckets, 0) {
  if (buckets == 0) {
    throw std::invalid_argument("sketch needs at least one bucket");
  }
}

void ContentSketch::add(net::PacketDigest id) noexcept {
  const std::uint32_t h = net::bob_hash_pair(id, 0, kBucketSeed);
  const std::uint32_t s = net::bob_hash_pair(id, 0, kSignSeed);
  const std::size_t bucket = h % counters_.size();
  counters_[bucket] += (s & 1u) != 0 ? 1 : -1;
  ++items_;
}

ContentSketch ContentSketch::difference(const ContentSketch& other) const {
  if (counters_.size() != other.counters_.size()) {
    throw std::invalid_argument("sketch width mismatch");
  }
  ContentSketch out(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out.counters_[i] = counters_[i] - other.counters_[i];
  }
  out.items_ = items_ + other.items_;
  return out;
}

double ContentSketch::squared_norm() const noexcept {
  double sum = 0.0;
  for (const std::int32_t c : counters_) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum;
}

ModificationCheck check_modification(const ContentSketch& up,
                                     std::uint64_t up_count,
                                     const ContentSketch& down,
                                     std::uint64_t down_count,
                                     double tolerance) {
  ModificationCheck out;
  out.up_count = up_count;
  out.down_count = down_count;
  out.symmetric_difference = up.difference(down).squared_norm();
  const double count_delta = std::abs(static_cast<double>(up_count) -
                                      static_cast<double>(down_count));
  out.modified_estimate =
      std::max(0.0, (out.symmetric_difference - count_delta) / 2.0);
  // The sketch estimator's standard deviation grows with the genuine
  // (loss-explainable) difference: sd(||diff||^2) ~ count_delta *
  // sqrt(2/buckets).  Only flag modification when the residual clears
  // three of those sigmas on top of the absolute tolerance — plain loss
  // must not raise alarms (the paper's aggregation component already
  // measures loss; the sketch is strictly for content changes).
  const double noise_sigma =
      count_delta * std::sqrt(2.0 / static_cast<double>(up.buckets()));
  out.modification_suspected =
      out.modified_estimate > tolerance + 3.0 * noise_sigma;
  return out;
}

}  // namespace vpm::sketch
