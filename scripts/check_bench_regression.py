#!/usr/bin/env python3
"""Bench-regression guard: fresh BENCH_fastpath.json vs the committed baseline.

Compares the ns/packet of every benchmark present in BOTH files (by exact
name) and fails when a fresh number exceeds the baseline by more than the
tolerance band.  The default tolerance is deliberately wide (+50%): CI
runners and the dev container are shared hosts with double-digit-percent
run-to-run noise, so the guard is a collapse detector (an accidental
O(n) in the sweep, a dropped SIMD tier, a debug build), not a
microregression tribunal.  Tighten it with --tolerance or
VPM_BENCH_TOLERANCE where the hardware is quiet.

Exit codes: 0 ok / skipped, 1 regression, 2 bad invocation.
"""
from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str):
    with open(path, encoding="utf-8") as f:
        d = json.load(f)
    if d.get("bench") != "fastpath" or not isinstance(d.get("results"), list):
        sys.exit(f"error: {path} is not a BENCH_fastpath.json (bench="
                 f"{d.get('bench')!r})")
    return d


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_fastpath.json",
                    help="committed baseline JSON (default: repo root copy)")
    ap.add_argument("--fresh", default="build/BENCH_fastpath.json",
                    help="freshly generated JSON (default: build/ copy)")
    ap.add_argument("--filter", default="BM_CacheObservePathSweep",
                    help="benchmark-name prefix to guard (default: the "
                         "path-count sweeps, the PR-level perf headline)")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("VPM_BENCH_TOLERANCE", 0.5)),
                    help="allowed fractional slowdown, e.g. 0.5 = +50%% "
                         "(env VPM_BENCH_TOLERANCE overrides the default)")
    args = ap.parse_args()

    if args.tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        return 2
    for path, what in ((args.baseline, "baseline"), (args.fresh, "fresh")):
        if not os.path.exists(path):
            # Skip-if-missing: a bench-less build (no google-benchmark) or a
            # first-ever run must not fail the guard.
            print(f"skip: {what} file {path} not found")
            return 0

    base = {r["name"]: r["ns_per_packet"] for r in load(args.baseline)["results"]}
    fresh = {r["name"]: r["ns_per_packet"] for r in load(args.fresh)["results"]}

    names = [n for n in base if n.startswith(args.filter) and n in fresh]
    if not names:
        print(f"skip: no common benchmarks match prefix {args.filter!r}")
        return 0

    bad = []
    width = max(map(len, names))
    print(f"tolerance: +{args.tolerance * 100:.0f}%  "
          f"({args.baseline} -> {args.fresh})")
    for n in names:
        ratio = fresh[n] / base[n]
        flag = "REGRESSION" if ratio > 1.0 + args.tolerance else "ok"
        print(f"  {n:<{width}}  {base[n]:9.2f} -> {fresh[n]:9.2f} ns/pkt  "
              f"x{ratio:5.2f}  {flag}")
        if flag != "ok":
            bad.append(n)
    if bad:
        print(f"FAIL: {len(bad)} benchmark(s) regressed past the "
              f"+{args.tolerance * 100:.0f}% band: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    print("ok: no regression past the band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
